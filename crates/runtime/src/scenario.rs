//! Named network scenarios: ready-made [`NetworkConfig`]s for the regimes
//! the experiments and benchmarks exercise, so "run §3 over a flaky WAN"
//! is one function call away. Every scenario is parameterised by a seed and
//! nothing else — the rest of the configuration is part of the scenario's
//! definition, which keeps experiment scripts comparable across PRs.

use crate::config::{ChurnPlan, DelayModel, NetworkConfig};
use anonet_selfstab::FaultPlan;

/// Zero delay, no loss, FIFO: the regime in which the runtime is
/// property-tested bit-identical to the synchronous engine.
pub fn ideal() -> NetworkConfig {
    NetworkConfig::ideal()
}

/// A fast homogeneous cluster: constant 2-tick links, lossless, FIFO.
pub fn datacenter(seed: u64) -> NetworkConfig {
    NetworkConfig::ideal().with_delays(DelayModel::Constant(2)).with_seed(seed)
}

/// A heterogeneous wide-area network: per-link base latency 20..=120 ticks
/// plus 10 ticks of per-message jitter, non-FIFO, lossless.
pub fn wan(seed: u64) -> NetworkConfig {
    NetworkConfig::ideal()
        .with_delays(DelayModel::PerLink { lo: 20, hi: 120, jitter: 10 })
        .non_fifo()
        .with_seed(seed)
}

/// A lossy radio-like network: geometric latency (mean 8), 5% loss on every
/// transmission, retransmit every 32 ticks, non-FIFO.
pub fn lossy_radio(seed: u64) -> NetworkConfig {
    NetworkConfig::ideal()
        .with_delays(DelayModel::Exponential { mean: 8 })
        .with_loss(0.05, 32)
        .non_fifo()
        .with_seed(seed)
}

/// [`lossy_radio`] plus crash/restart churn: at scripted rounds `2` and `5`
/// (scaled by 64 ticks per round), 20% of nodes crash for 96 ticks. The
/// [`FaultPlan`] is the same scripting type the self-stabilization
/// experiments use.
pub fn churny_radio(seed: u64) -> NetworkConfig {
    lossy_radio(seed).with_churn(ChurnPlan {
        plan: FaultPlan { rounds: vec![2, 5], fraction: 0.2, seed: seed ^ 0x5EED },
        round_ticks: 64,
        downtime: 96,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_async_pn;
    use anonet_sim::{Graph, PnAlgorithm};

    #[test]
    fn scenarios_are_well_formed() {
        assert!(!ideal().needs_timers());
        assert!(!datacenter(1).needs_timers());
        assert!(!wan(2).needs_timers());
        assert!(wan(2).delays.can_reorder());
        assert!(lossy_radio(3).needs_timers());
        let churny = churny_radio(4);
        assert!(churny.churn.is_some());
        assert_eq!(churny.loss.rto, 32);
    }

    /// Minimal fixed-schedule gossip used to exercise the presets.
    struct Gossip {
        acc: u64,
        budget: u64,
    }

    impl PnAlgorithm for Gossip {
        type Msg = u64;
        type Input = u64;
        type Output = u64;
        type Config = u64;

        fn init(cfg: &u64, degree: usize, input: &u64) -> Self {
            Gossip { acc: *input ^ degree as u64, budget: *cfg }
        }
        fn send(&self, _cfg: &u64, round: u64, out: &mut [u64]) {
            for (p, o) in out.iter_mut().enumerate() {
                *o = self.acc.wrapping_add(round).rotate_left(p as u32);
            }
        }
        fn receive(&mut self, _cfg: &u64, round: u64, incoming: &[&u64]) -> Option<u64> {
            for &&m in incoming {
                self.acc = self.acc.rotate_left(7).wrapping_add(m);
            }
            (round >= self.budget).then_some(self.acc)
        }
    }

    fn net_for(name: &str, seed: u64) -> crate::config::NetworkConfig {
        match name {
            "ideal" => ideal(),
            "datacenter" => datacenter(seed),
            "wan" => wan(seed),
            "lossy_radio" => lossy_radio(seed),
            "churny_radio" => churny_radio(seed),
            other => panic!("unknown preset {other}"),
        }
    }

    const PRESETS: [&str; 5] = ["ideal", "datacenter", "wan", "lossy_radio", "churny_radio"];

    #[test]
    fn every_preset_is_seed_deterministic() {
        // Same preset + same seed ⇒ identical outputs AND identical full
        // AsyncTrace, including the event-sequence digest — the compact
        // witness that the entire event schedule replayed bit-for-bit.
        let edges: Vec<(usize, usize)> = (0..12).map(|v| (v, (v + 1) % 12)).collect();
        let g = Graph::from_edges(12, &edges).unwrap();
        let inputs: Vec<u64> = (0..12u64).collect();
        for preset in PRESETS {
            let a = run_async_pn::<Gossip>(&g, &6, &inputs, 8, &net_for(preset, 99)).unwrap();
            let b = run_async_pn::<Gossip>(&g, &6, &inputs, 8, &net_for(preset, 99)).unwrap();
            assert_eq!(a.outputs, b.outputs, "{preset}: outputs");
            assert_eq!(a.trace, b.trace, "{preset}: full AsyncTrace incl. event_hash");
        }
    }

    #[test]
    fn randomized_presets_depend_on_the_seed() {
        // The seeded presets must actually consume the seed: two seeds give
        // different event schedules (ideal/datacenter are deterministic
        // regardless of seed, so they are excluded).
        let edges: Vec<(usize, usize)> = (0..12).map(|v| (v, (v + 1) % 12)).collect();
        let g = Graph::from_edges(12, &edges).unwrap();
        let inputs: Vec<u64> = (0..12u64).collect();
        for preset in ["wan", "lossy_radio", "churny_radio"] {
            let a = run_async_pn::<Gossip>(&g, &6, &inputs, 8, &net_for(preset, 1)).unwrap();
            let b = run_async_pn::<Gossip>(&g, &6, &inputs, 8, &net_for(preset, 2)).unwrap();
            assert_ne!(a.trace.event_hash, b.trace.event_hash, "{preset}: seed ignored?");
            // Outputs are nevertheless identical — the synchronizer
            // guarantee — so determinism differences live in the schedule.
            assert_eq!(a.outputs, b.outputs, "{preset}: outputs must not depend on the seed");
        }
    }
}

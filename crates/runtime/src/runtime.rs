//! The asynchronous executor: an α-synchronizer driving unchanged
//! [`PnAlgorithm`]/[`BcastAlgorithm`] node programs over a simulated
//! message-passing network.
//!
//! ## Execution model
//!
//! Each node is driven purely by message arrivals. A node entering
//! (1-based) round `r` immediately transmits its round-`r` messages — one
//! per port, each tagged with `r` — and then waits. Every data arrival is
//! acknowledged; unacknowledged messages are retransmitted every
//! [`LossModel::rto`] ticks. Once the node holds a round-`r` message on
//! every port it executes the algorithm's `receive` (gathered through
//! [`Delivery::gather_local`], so port alignment vs. sorted-multiset
//! semantics stay defined in `anonet-sim`) and advances to round `r + 1` or
//! halts.
//!
//! ## Why this is correct (the synchronizer argument)
//!
//! *Round-skew invariant*: a node reaches round `r + 1` only after receiving
//! a round-`r` message from every neighbour, and a neighbour tags messages
//! with the round it is currently in — so if some node is in round `r + 2`,
//! every one of its neighbours has completed round `r + 1`, and neighbouring
//! nodes are never more than one round apart. Consequently a live node only
//! ever sees data tagged `r` or `r + 1`: the current round is consumed
//! directly, the next round is buffered, anything older is an acknowledged
//! duplicate. Each node therefore consumes, for every round, *exactly* the
//! multiset of messages the synchronous engine would deliver — per port for
//! the port-numbering model, canonically sorted for broadcast — and since
//! the algorithms are deterministic the outputs are **bit-identical to the
//! synchronous [`Engine`](anonet_sim::Engine) under every network
//! configuration**, not just the ideal one (property-tested; the
//! zero-delay lossless FIFO case is the acceptance criterion, the general
//! case is the synchronizer's guarantee). Loss and churn change only *when*
//! messages arrive, never *what* arrives: retransmission is idempotent
//! because the receiver deduplicates by (port, round).
//!
//! A node that halts at round `h` keeps answering: when a round-`r > h`
//! message arrives it replies with `Msg::default()` tagged `r` — exactly
//! the message the synchronous engine's halted nodes keep sending — and that
//! reply goes through the same retransmit-until-acked machinery, so a lost
//! reply cannot deadlock a live neighbour.
//!
//! ## Instrumentation
//!
//! [`MessageSize`] carries over unchanged: [`AsyncTrace`] accounts payload
//! bits of unique receipts (comparable to the synchronous
//! [`Trace`](anonet_sim::Trace) for fixed-schedule algorithms, where every
//! node sends every round), and *separately* accounts retransmitted and
//! dropped transmissions plus the synchronizer's own overhead (round tags
//! and acks) — so instrumentation cannot silently undercount under loss.

use crate::config::NetworkConfig;
use crate::events::{Event, EventKind, EventQueue, Payload};
use anonet_gen::Rng;
use anonet_sim::{
    BcastAlgorithm, Broadcast, Delivery, GatherScratch, Graph, MessageSize, PnAlgorithm,
    PortNumbering, Trace,
};
use std::fmt;

/// Bits of a synchronizer round tag (data messages) and of an ack.
const TAG_BITS: u64 = 64;

/// Instrumentation of an asynchronous run.
///
/// `messages`/`payload_bits`/`max_message_bits` count **unique receipts**
/// (one per delivered (arc, round), duplicates excluded) — for fixed-round-
/// schedule algorithms these equal the synchronous engine's `Trace` counts.
/// Everything the network added on top is accounted separately:
/// retransmissions, drops, acks, and round tags. All fields are pure
/// functions of `(graph, inputs, NetworkConfig)` — two runs with the same
/// seed produce identical traces, including [`event_hash`](Self::event_hash).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AsyncTrace {
    /// Highest completed round over all nodes.
    pub rounds: u64,
    /// Unique data receipts (first delivery of each (arc, round)).
    pub messages: u64,
    /// Payload bits of unique receipts.
    pub payload_bits: u64,
    /// Largest single payload observed, in bits.
    pub max_message_bits: u64,
    /// First-time data transmissions.
    pub sent: u64,
    /// Data arrivals processed by an up node (duplicates included).
    pub delivered: u64,
    /// Delivered data the receiver had already seen (or no longer needed).
    pub duplicates: u64,
    /// Repeat transmissions triggered by retransmission timeouts.
    pub retransmissions: u64,
    /// Payload bits of those retransmissions.
    pub retransmitted_bits: u64,
    /// Data transmissions lost to link loss or a crashed receiver.
    pub dropped_data: u64,
    /// Payload bits of lost data transmissions.
    pub dropped_data_bits: u64,
    /// Acknowledgement transmissions.
    pub acks: u64,
    /// Bits spent on acknowledgements.
    pub ack_bits: u64,
    /// Acks lost to link loss or a crashed receiver.
    pub dropped_acks: u64,
    /// Bits spent on data round tags (every transmission, retransmissions
    /// included).
    pub tag_bits: u64,
    /// Churn: crash events applied.
    pub crashes: u64,
    /// Churn: restart events applied.
    pub restarts: u64,
    /// Events processed by the loop.
    pub events: u64,
    /// Virtual time of the last processed event, in ticks.
    pub virtual_time: u64,
    /// FNV-1a digest of the processed event sequence (times, kinds,
    /// endpoints, rounds) — the compact witness for seeded determinism.
    pub event_hash: u64,
}

impl AsyncTrace {
    /// Bits the synchronizer itself added on the wire: round tags plus acks.
    /// Dividing by [`payload_bits`](Self::payload_bits) gives the overhead
    /// ratio the `perf_baseline` rows report.
    pub fn sync_overhead_bits(&self) -> u64 {
        self.tag_bits + self.ack_bits
    }

    /// The algorithm-level view as a synchronous [`Trace`], for
    /// instrumentation consumers that predate the runtime: unique receipts
    /// and their payload bits. For fixed-round-schedule algorithms under any
    /// lossless-or-retransmitting configuration this equals the synchronous
    /// engine's trace.
    pub fn delivered_trace(&self) -> Trace {
        Trace {
            rounds: self.rounds,
            messages: self.messages,
            total_bits: self.payload_bits,
            max_message_bits: self.max_message_bits,
        }
    }

    /// Exports the trace into an `anonet-obs` registry as `runtime.*`
    /// gauges — the bridge from the runtime's own accounting to the
    /// workspace metrics schema ([`anonet_obs::Snapshot::to_json`], the
    /// service's metrics frame). Gauges, not counters: a trace is a
    /// consistent snapshot of one run, and re-exporting a newer trace
    /// overwrites rather than double-counts. Purely logical quantities —
    /// no wall clock is involved, so this is callable from deterministic
    /// code. The default is simply not to call it: the runtime itself never
    /// touches a registry.
    pub fn export_metrics(&self, registry: &anonet_obs::Registry) {
        for (name, value) in [
            ("runtime.rounds", self.rounds),
            ("runtime.messages", self.messages),
            ("runtime.payload_bits", self.payload_bits),
            ("runtime.max_message_bits", self.max_message_bits),
            ("runtime.sent", self.sent),
            ("runtime.delivered", self.delivered),
            ("runtime.duplicates", self.duplicates),
            ("runtime.retransmissions", self.retransmissions),
            ("runtime.retransmitted_bits", self.retransmitted_bits),
            ("runtime.dropped_data", self.dropped_data),
            ("runtime.dropped_data_bits", self.dropped_data_bits),
            ("runtime.acks", self.acks),
            ("runtime.ack_bits", self.ack_bits),
            ("runtime.dropped_acks", self.dropped_acks),
            ("runtime.tag_bits", self.tag_bits),
            ("runtime.sync_overhead_bits", self.sync_overhead_bits()),
            ("runtime.crashes", self.crashes),
            ("runtime.restarts", self.restarts),
            ("runtime.events", self.events),
            ("runtime.virtual_time", self.virtual_time),
            ("runtime.event_hash", self.event_hash),
        ] {
            registry.gauge(name).set(value);
        }
    }
}

/// Errors from an asynchronous run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsyncError {
    /// The number of inputs does not match the number of nodes.
    InputLength {
        /// Number of inputs provided.
        got: usize,
        /// Number of nodes in the graph.
        want: usize,
    },
    /// Some node completed `limit` rounds without halting.
    RoundLimit {
        /// The round limit.
        limit: u64,
        /// Nodes halted when the limit was hit.
        halted: usize,
        /// Total number of nodes.
        n: usize,
    },
    /// The configured event budget was exhausted.
    EventLimit {
        /// The event budget.
        limit: u64,
        /// Nodes halted when the budget ran out.
        halted: usize,
        /// Total number of nodes.
        n: usize,
    },
    /// The event queue drained before every node halted — unreachable for a
    /// well-formed configuration (kept total rather than panicking).
    Stalled {
        /// Nodes halted at the stall.
        halted: usize,
        /// Total number of nodes.
        n: usize,
    },
}

impl fmt::Display for AsyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsyncError::InputLength { got, want } => {
                write!(f, "got {got} inputs for {want} nodes")
            }
            AsyncError::RoundLimit { limit, halted, n } => {
                write!(f, "round limit {limit} reached with only {halted}/{n} nodes halted")
            }
            AsyncError::EventLimit { limit, halted, n } => {
                write!(f, "event limit {limit} reached with only {halted}/{n} nodes halted")
            }
            AsyncError::Stalled { halted, n } => {
                write!(f, "event queue drained with only {halted}/{n} nodes halted")
            }
        }
    }
}

impl std::error::Error for AsyncError {}

/// Outputs plus instrumentation from a completed asynchronous run.
#[derive(Clone, Debug)]
pub struct AsyncResult<O> {
    /// Per-node outputs, indexed by node id.
    pub outputs: Vec<O>,
    /// Instrumentation.
    pub trace: AsyncTrace,
}

/// Per-node runtime state wrapped around the algorithm state.
struct NodeRt<A, D: Delivery<A>> {
    state: A,
    /// Round currently executing (1-based); after halting, the halt round.
    round: u64,
    halted: Option<D::Output>,
    /// Churn: whether the node is currently up.
    up: bool,
    /// Send-slot buffer for the current round (degree slots for port
    /// numbering, one for broadcast — [`Delivery::slot_span`] decides).
    outbox: Vec<D::Msg>,
    /// Per-port inbox of the current round (`have_cur` marks filled slots).
    inbox_cur: Vec<D::Msg>,
    have_cur: Vec<bool>,
    got_cur: usize,
    /// Per-port inbox of the *next* round (neighbours may run one ahead).
    inbox_next: Vec<D::Msg>,
    have_next: Vec<bool>,
    got_next: usize,
    /// Unacknowledged transmissions `(port, round, message)` — resent every
    /// rto until acked. Tracked only when the configuration can lose
    /// messages.
    outstanding: Vec<(u32, u64, D::Msg)>,
    /// After halting: per port, the highest round already answered with a
    /// default reply (persistent dedup — a stale re-request must be neither
    /// re-counted nor re-served). Empty while the node is live.
    served: Vec<u64>,
    /// Retransmission-timer generation (stale timeout events are skipped)
    /// and whether a timer is currently scheduled.
    timer_gen: u64,
    timer_armed: bool,
}

/// An in-flight asynchronous execution, generic over the delivery model `D`
/// exactly like the synchronous [`Engine`](anonet_sim::Engine) — every
/// existing algorithm runs unmodified.
pub struct AsyncRuntime<'a, A, D: Delivery<A>> {
    g: &'a Graph,
    cfg: &'a D::Config,
    net: NetworkConfig,
    max_rounds: u64,
    nodes: Vec<NodeRt<A, D>>,
    queue: EventQueue<D::Msg>,
    rng: Rng,
    /// Per-arc base latency (all zero unless `DelayModel::PerLink`).
    link_base: Vec<u64>,
    /// Per-arc latest scheduled arrival, for the FIFO clamp.
    last_arrival: Vec<u64>,
    halted: usize,
    /// Reusable rank/count tables for `Delivery::gather_local` (broadcast
    /// counting canonicalisation; unused by port numbering).
    gather_gs: GatherScratch,
    trace: AsyncTrace,
}

impl<'a, A, D: Delivery<A>> AsyncRuntime<'a, A, D> {
    /// Initialises every node (via the model's own `init`) and schedules the
    /// scripted churn events. No messages are sent yet — [`run`](Self::run)
    /// performs the round-1 transmissions.
    pub fn new(
        g: &'a Graph,
        cfg: &'a D::Config,
        inputs: &[D::Input],
        max_rounds: u64,
        net: &NetworkConfig,
    ) -> Result<Self, AsyncError> {
        if inputs.len() != g.n() {
            return Err(AsyncError::InputLength { got: inputs.len(), want: g.n() });
        }
        assert!(g.n() <= u32::MAX as usize, "runtime supports at most 2^32 - 1 nodes");
        let mut rng = Rng::new(net.seed);
        let link_base: Vec<u64> =
            (0..g.arcs()).map(|_| net.delays.sample_link_base(&mut rng)).collect();
        let nodes: Vec<NodeRt<A, D>> = (0..g.n())
            .map(|v| {
                let deg = g.degree(v);
                let slots = D::slot_span(g, v..v + 1).len();
                NodeRt {
                    state: D::init(cfg, deg, &inputs[v]),
                    round: 1,
                    halted: None,
                    up: true,
                    outbox: (0..slots).map(|_| D::Msg::default()).collect(),
                    inbox_cur: (0..deg).map(|_| D::Msg::default()).collect(),
                    have_cur: vec![false; deg],
                    got_cur: 0,
                    inbox_next: (0..deg).map(|_| D::Msg::default()).collect(),
                    have_next: vec![false; deg],
                    got_next: 0,
                    outstanding: Vec::new(),
                    served: Vec::new(),
                    timer_gen: 0,
                    timer_armed: false,
                }
            })
            .collect();
        let mut queue = EventQueue::new();
        if let Some(churn) = &net.churn {
            // Victim selection uses the same `FaultPlan::victims` rule as the
            // self-stabilization strikes (per-strike sets still differ from a
            // transformer run, whose rng interleaves scramble draws).
            let mut crng = Rng::new(churn.plan.seed);
            for &r in &churn.plan.rounds {
                let t = churn.round_ticks.saturating_mul(r);
                for v in churn.plan.victims(g.n(), &mut crng) {
                    queue.push(t, EventKind::Crash { node: v as u32 });
                    queue.push(t + churn.downtime, EventKind::Restart { node: v as u32 });
                }
            }
        }
        Ok(AsyncRuntime {
            g,
            cfg,
            net: net.clone(),
            max_rounds,
            nodes,
            queue,
            rng,
            link_base,
            last_arrival: vec![0; g.arcs()],
            halted: 0,
            gather_gs: GatherScratch::default(),
            trace: AsyncTrace {
                // FNV-1a offset basis; every processed event folds in.
                event_hash: 0xCBF2_9CE4_8422_2325,
                ..AsyncTrace::default()
            },
        })
    }

    /// Events currently scheduled (timers, in-flight messages, churn).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Instrumentation so far.
    pub fn trace(&self) -> &AsyncTrace {
        &self.trace
    }

    /// Number of nodes that have halted.
    pub fn halted(&self) -> usize {
        self.halted
    }

    /// Runs the event loop to completion.
    pub fn run(mut self) -> Result<AsyncResult<D::Output>, AsyncError> {
        let n = self.g.n();
        // Round-1 transmissions, in node order at time 0.
        for v in 0..n {
            self.emit_round(v, 0);
        }
        // Isolated nodes are driven by nothing — advance them directly.
        for v in 0..n {
            if self.g.degree(v) == 0 {
                self.advance(v, 0)?;
            }
        }
        while self.halted < n {
            let Some(ev) = self.queue.pop() else {
                return Err(AsyncError::Stalled { halted: self.halted, n });
            };
            if self.trace.events >= self.net.max_events {
                return Err(AsyncError::EventLimit {
                    limit: self.net.max_events,
                    halted: self.halted,
                    n,
                });
            }
            self.trace.events += 1;
            self.trace.virtual_time = ev.time;
            self.hash_event(&ev);
            match ev.kind {
                EventKind::Arrival { node, port, payload } => {
                    self.on_arrival(node as usize, port as usize, payload, ev.time)?;
                }
                EventKind::Timeout { node, gen } => self.on_timeout(node as usize, gen, ev.time),
                EventKind::Crash { node } => self.on_crash(node as usize),
                EventKind::Restart { node } => self.on_restart(node as usize, ev.time),
            }
        }
        let outputs = self.nodes.into_iter().map(|nd| nd.halted.expect("all halted")).collect();
        Ok(AsyncResult { outputs, trace: self.trace })
    }

    /// Folds one event into the deterministic trace digest (FNV-1a; the
    /// basis is seeded at construction).
    fn hash_event(&mut self, ev: &Event<D::Msg>) {
        fn fold(h: &mut u64, x: u64) {
            for b in x.to_le_bytes() {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        let mut h = self.trace.event_hash;
        fold(&mut h, ev.time);
        match &ev.kind {
            EventKind::Arrival { node, port, payload } => {
                let (tag, round) = match payload {
                    Payload::Data { round, .. } => (1u64, *round),
                    Payload::Ack { round } => (2, *round),
                };
                fold(&mut h, tag);
                fold(&mut h, u64::from(*node) << 32 | u64::from(*port));
                fold(&mut h, round);
            }
            EventKind::Timeout { node, gen } => {
                fold(&mut h, 3);
                fold(&mut h, u64::from(*node));
                fold(&mut h, *gen);
            }
            EventKind::Crash { node } => {
                fold(&mut h, 4);
                fold(&mut h, u64::from(*node));
            }
            EventKind::Restart { node } => {
                fold(&mut h, 5);
                fold(&mut h, u64::from(*node));
            }
        }
        self.trace.event_hash = h;
    }

    /// The shared link layer: loss coin flip, latency sample, FIFO clamp,
    /// arrival scheduling. Returns `false` when the transmission was
    /// dropped. Data and acks route identically — any change to link
    /// semantics lives here once.
    fn transmit(&mut self, from: usize, port: usize, payload: Payload<D::Msg>, now: u64) -> bool {
        if self.net.loss.drop_prob > 0.0 && self.rng.chance(self.net.loss.drop_prob) {
            return false;
        }
        let a = self.g.arc(from, port);
        let to = self.g.head(a) as u32;
        let to_port = self.g.port_of(self.g.rev(a)) as u32;
        let mut t = now + self.net.delays.sample(self.link_base[a], &mut self.rng);
        if self.net.fifo {
            t = t.max(self.last_arrival[a]);
            self.last_arrival[a] = t;
        }
        self.queue.push(t, EventKind::Arrival { node: to, port: to_port, payload });
        true
    }

    /// Transmits one data message on `(from, port)` with wire accounting.
    fn send_data(
        &mut self,
        from: usize,
        port: usize,
        round: u64,
        msg: D::Msg,
        retx: bool,
        now: u64,
    ) {
        let bits = msg.approx_bits();
        if retx {
            self.trace.retransmissions += 1;
            self.trace.retransmitted_bits += bits;
        } else {
            self.trace.sent += 1;
        }
        self.trace.tag_bits += TAG_BITS;
        if !self.transmit(from, port, Payload::Data { round, msg }, now) {
            self.trace.dropped_data += 1;
            self.trace.dropped_data_bits += bits;
        }
    }

    /// Transmits one ack on `(from, port)` for the given round tag.
    fn send_ack(&mut self, from: usize, port: usize, round: u64, now: u64) {
        self.trace.acks += 1;
        self.trace.ack_bits += TAG_BITS;
        if !self.transmit(from, port, Payload::Ack { round }, now) {
            self.trace.dropped_acks += 1;
        }
    }

    /// Computes and transmits node `v`'s current-round messages (one per
    /// port), registering them for retransmission when the network can lose
    /// them.
    fn emit_round(&mut self, v: usize, now: u64) {
        let deg = self.g.degree(v);
        let track = self.net.needs_timers();
        let nd = &mut self.nodes[v];
        let round = nd.round;
        for slot in nd.outbox.iter_mut() {
            *slot = D::Msg::default();
        }
        D::send(&nd.state, self.cfg, round, &mut nd.outbox);
        // Take the outbox out of the node so transmissions can borrow the
        // runtime mutably; the per-port message clones are inherent (the
        // queue, and the retransmission set when tracking, own their copies).
        let outbox = std::mem::take(&mut nd.outbox);
        for p in 0..deg {
            let msg = outbox[if outbox.len() == 1 { 0 } else { p }].clone();
            if track {
                self.nodes[v].outstanding.push((p as u32, round, msg.clone()));
            }
            self.send_data(v, p, round, msg, false, now);
        }
        self.nodes[v].outbox = outbox;
        if track && deg > 0 {
            self.arm_timer(v, now);
        }
    }

    /// Schedules (at most one) retransmission timer for node `v`.
    fn arm_timer(&mut self, v: usize, now: u64) {
        if !self.net.needs_timers() {
            return;
        }
        let rto = self.net.loss.rto;
        let nd = &mut self.nodes[v];
        if nd.timer_armed {
            return;
        }
        nd.timer_gen += 1;
        nd.timer_armed = true;
        let gen = nd.timer_gen;
        self.queue.push(now + rto, EventKind::Timeout { node: v as u32, gen });
    }

    fn on_arrival(
        &mut self,
        node: usize,
        port: usize,
        payload: Payload<D::Msg>,
        now: u64,
    ) -> Result<(), AsyncError> {
        if !self.nodes[node].up {
            // Crashed receiver: the transmission is lost; the sender's
            // retransmission timer recovers it after the restart.
            match payload {
                Payload::Data { msg, .. } => {
                    self.trace.dropped_data += 1;
                    self.trace.dropped_data_bits += msg.approx_bits();
                }
                Payload::Ack { .. } => self.trace.dropped_acks += 1,
            }
            return Ok(());
        }
        match payload {
            Payload::Ack { round } => {
                let nd = &mut self.nodes[node];
                nd.outstanding.retain(|(p, r, _)| !(*p == port as u32 && *r == round));
                Ok(())
            }
            Payload::Data { round, msg } => self.on_data(node, port, round, msg, now),
        }
    }

    fn on_data(
        &mut self,
        node: usize,
        port: usize,
        mr: u64,
        msg: D::Msg,
        now: u64,
    ) -> Result<(), AsyncError> {
        let nd = &self.nodes[node];
        let live = nd.halted.is_none();
        let r = nd.round;
        if live && mr > r + 1 {
            // Unreachable by the round-skew invariant; dropped *without* an
            // ack so the sender retries once we catch up (totality).
            debug_assert!(false, "round skew > 1: node {node} at {r} got round {mr}");
            self.trace.dropped_data += 1;
            self.trace.dropped_data_bits += msg.approx_bits();
            return Ok(());
        }
        self.trace.delivered += 1;
        self.send_ack(node, port, mr, now);
        if !live {
            // Halted at round `r`: serve `Msg::default()` for rounds the
            // neighbour still needs — the same message the synchronous
            // engine's halted nodes keep sending — through the normal
            // retransmission machinery (a lost reply must not deadlock the
            // neighbour).
            let track = self.net.needs_timers();
            let nd = &mut self.nodes[node];
            // `served[port]` is a persistent watermark: a request round at or
            // below it was already answered (and its receipt counted) — a
            // stale retransmission must be neither re-counted nor re-served.
            if mr > r && mr > nd.served[port] {
                nd.served[port] = mr;
                if track {
                    nd.outstanding.push((port as u32, mr, D::Msg::default()));
                }
                // The neighbour's message *was* received (then discarded): a
                // unique receipt of its payload.
                self.count_unique(msg.approx_bits());
                self.send_data(node, port, mr, D::Msg::default(), false, now);
                if track {
                    self.arm_timer(node, now);
                }
            } else {
                self.trace.duplicates += 1;
            }
            return Ok(());
        }
        let bits = msg.approx_bits();
        let nd = &mut self.nodes[node];
        if mr == r {
            if !nd.have_cur[port] {
                nd.have_cur[port] = true;
                nd.inbox_cur[port] = msg;
                nd.got_cur += 1;
                let complete = nd.got_cur == self.g.degree(node);
                self.count_unique(bits);
                if complete {
                    return self.advance(node, now);
                }
            } else {
                self.trace.duplicates += 1;
            }
        } else if mr == r + 1 {
            if !nd.have_next[port] {
                nd.have_next[port] = true;
                nd.inbox_next[port] = msg;
                nd.got_next += 1;
                self.count_unique(bits);
            } else {
                self.trace.duplicates += 1;
            }
        } else {
            // mr < r: a retransmitted copy of an already-consumed round.
            self.trace.duplicates += 1;
        }
        Ok(())
    }

    /// Accounts one unique data receipt of the given payload size.
    fn count_unique(&mut self, bits: u64) {
        self.trace.messages += 1;
        self.trace.payload_bits += bits;
        self.trace.max_message_bits = self.trace.max_message_bits.max(bits);
    }

    /// Executes rounds at node `v` for as long as its current-round inbox is
    /// complete: receive, then either halt or advance and transmit the next
    /// round. Isolated nodes loop here until they halt (or overrun the
    /// round limit, which is an immediate error — such a node can never
    /// halt).
    fn advance(&mut self, v: usize, now: u64) -> Result<(), AsyncError> {
        let deg = self.g.degree(v);
        loop {
            let nd = &mut self.nodes[v];
            debug_assert!(nd.halted.is_none() && nd.got_cur == deg);
            let round = nd.round;
            if round > self.max_rounds {
                return Err(AsyncError::RoundLimit {
                    limit: self.max_rounds,
                    halted: self.halted,
                    n: self.g.n(),
                });
            }
            let mut scratch: Vec<&D::Msg> = Vec::with_capacity(deg);
            D::gather_local(&nd.inbox_cur, &mut self.gather_gs, &mut scratch);
            let out = D::receive(&mut nd.state, self.cfg, round, &scratch);
            drop(scratch);
            self.trace.rounds = self.trace.rounds.max(round);
            if let Some(o) = out {
                nd.halted = Some(o);
                self.halted += 1;
                // Answer the round-(h+1) messages already buffered in the
                // next-round inbox: their senders were acked at arrival and
                // will never retransmit, so without an eager default reply a
                // live neighbour would deadlock waiting on this port. Their
                // receipts were counted at arrival, so the served watermark
                // starts at h+1 for exactly those ports.
                let reply_round = round + 1;
                nd.served = vec![0; deg];
                let pending: Vec<usize> =
                    (0..deg).filter(|&p| self.nodes[v].have_next[p]).collect();
                let track = self.net.needs_timers();
                {
                    let nd = &mut self.nodes[v];
                    for &p in &pending {
                        nd.served[p] = reply_round;
                        if track {
                            nd.outstanding.push((p as u32, reply_round, D::Msg::default()));
                        }
                    }
                }
                let any = !pending.is_empty();
                for p in pending {
                    self.send_data(v, p, reply_round, D::Msg::default(), false, now);
                }
                if track && any {
                    self.arm_timer(v, now);
                }
                return Ok(());
            }
            // Advance: rotate the next-round inbox in and transmit.
            nd.round = round + 1;
            std::mem::swap(&mut nd.inbox_cur, &mut nd.inbox_next);
            std::mem::swap(&mut nd.have_cur, &mut nd.have_next);
            nd.got_cur = nd.got_next;
            nd.got_next = 0;
            for (slot, have) in nd.inbox_next.iter_mut().zip(nd.have_next.iter_mut()) {
                *slot = D::Msg::default();
                *have = false;
            }
            self.emit_round(v, now);
            if deg > 0 && self.nodes[v].got_cur < deg {
                return Ok(());
            }
        }
    }

    fn on_timeout(&mut self, v: usize, gen: u64, now: u64) {
        let nd = &mut self.nodes[v];
        if gen != nd.timer_gen {
            return; // stale (cancelled by a crash or superseded)
        }
        nd.timer_armed = false;
        if !nd.up || nd.outstanding.is_empty() {
            return;
        }
        let resend = nd.outstanding.clone();
        self.arm_timer(v, now);
        for (p, r, m) in resend {
            self.send_data(v, p as usize, r, m, true, now);
        }
    }

    fn on_crash(&mut self, v: usize) {
        let nd = &mut self.nodes[v];
        if !nd.up {
            return; // overlapping strikes: already down
        }
        nd.up = false;
        // Cancel the retransmission timer; state survives (crash-recovery
        // with stable storage).
        nd.timer_gen += 1;
        nd.timer_armed = false;
        self.trace.crashes += 1;
    }

    fn on_restart(&mut self, v: usize, now: u64) {
        let nd = &mut self.nodes[v];
        if nd.up {
            return;
        }
        nd.up = true;
        self.trace.restarts += 1;
        let resend = nd.outstanding.clone();
        if !resend.is_empty() {
            self.arm_timer(v, now);
            for (p, r, m) in resend {
                self.send_data(v, p as usize, r, m, true, now);
            }
        }
    }
}

/// Runs an algorithm to completion under delivery model `D` on the
/// asynchronous runtime — the generic core behind [`run_async_pn`] /
/// [`run_async_bcast`], mirroring [`run_engine`](anonet_sim::run_engine).
pub fn run_async_engine<A, D: Delivery<A>>(
    g: &Graph,
    cfg: &D::Config,
    inputs: &[D::Input],
    max_rounds: u64,
    net: &NetworkConfig,
) -> Result<AsyncResult<D::Output>, AsyncError> {
    AsyncRuntime::<A, D>::new(g, cfg, inputs, max_rounds, net)?.run()
}

/// Runs a port-numbering algorithm to completion on the asynchronous
/// runtime.
pub fn run_async_pn<A: PnAlgorithm>(
    g: &Graph,
    cfg: &A::Config,
    inputs: &[A::Input],
    max_rounds: u64,
    net: &NetworkConfig,
) -> Result<AsyncResult<A::Output>, AsyncError> {
    run_async_engine::<A, PortNumbering>(g, cfg, inputs, max_rounds, net)
}

/// Runs a broadcast algorithm to completion on the asynchronous runtime.
pub fn run_async_bcast<A: BcastAlgorithm>(
    g: &Graph,
    cfg: &A::Config,
    inputs: &[A::Input],
    max_rounds: u64,
    net: &NetworkConfig,
) -> Result<AsyncResult<A::Output>, AsyncError> {
    run_async_engine::<A, Broadcast>(g, cfg, inputs, max_rounds, net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChurnPlan, DelayModel};
    use anonet_selfstab::FaultPlan;
    use anonet_sim::run_pn;

    /// Gossip the running maximum; halt at the round carried in the input's
    /// low byte (mirrors the engine bench workload).
    struct Gossip {
        best: u64,
        halt_at: u64,
    }

    impl PnAlgorithm for Gossip {
        type Msg = u64;
        type Input = u64;
        type Output = u64;
        type Config = ();

        fn init(_: &(), _degree: usize, input: &u64) -> Self {
            Gossip { best: *input >> 8, halt_at: (*input & 0xFF).max(1) }
        }
        fn send(&self, _: &(), _round: u64, out: &mut [u64]) {
            for m in out {
                *m = self.best;
            }
        }
        fn receive(&mut self, _: &(), round: u64, incoming: &[&u64]) -> Option<u64> {
            for &&m in incoming {
                self.best = self.best.max(m);
            }
            (round >= self.halt_at).then_some(self.best)
        }
    }

    fn inputs(n: usize, halt: impl Fn(u64) -> u64) -> Vec<u64> {
        (0..n as u64).map(|v| (v << 8) | (halt(v) & 0xFF)).collect()
    }

    fn ring(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn ideal_matches_sync_engine() {
        let g = ring(16);
        let ins = inputs(16, |v| v % 5 + 1);
        let sync = run_pn::<Gossip>(&g, &(), &ins, 20).unwrap();
        let res = run_async_pn::<Gossip>(&g, &(), &ins, 20, &NetworkConfig::ideal()).unwrap();
        assert_eq!(res.outputs, sync.outputs);
    }

    #[test]
    fn trace_exports_to_metrics_registry() {
        let g = ring(16);
        let ins = inputs(16, |v| v % 5 + 1);
        let res = run_async_pn::<Gossip>(&g, &(), &ins, 20, &NetworkConfig::ideal()).unwrap();
        let reg = anonet_obs::Registry::new();
        res.trace.export_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.scalar("runtime.rounds"), Some(res.trace.rounds));
        assert_eq!(snap.scalar("runtime.messages"), Some(res.trace.messages));
        assert_eq!(snap.scalar("runtime.event_hash"), Some(res.trace.event_hash));
        assert_eq!(snap.scalar("runtime.sync_overhead_bits"), Some(res.trace.sync_overhead_bits()));
        // Re-exporting a trace overwrites: gauges, not counters.
        res.trace.export_metrics(&reg);
        assert_eq!(reg.snapshot().scalar("runtime.rounds"), Some(res.trace.rounds));
    }

    #[test]
    fn lossy_jittered_still_matches_sync_outputs() {
        let g = ring(12);
        let ins = inputs(12, |v| v % 4 + 2);
        let sync = run_pn::<Gossip>(&g, &(), &ins, 20).unwrap();
        let net = NetworkConfig::ideal()
            .with_delays(DelayModel::Uniform { lo: 0, hi: 9 })
            .with_loss(0.2, 4)
            .non_fifo()
            .with_seed(99);
        let res = run_async_pn::<Gossip>(&g, &(), &ins, 20, &net).unwrap();
        assert_eq!(res.outputs, sync.outputs);
        assert!(res.trace.dropped_data > 0, "20% loss must drop something");
        assert!(res.trace.retransmissions > 0, "drops must trigger retransmissions");
    }

    #[test]
    fn churn_delays_but_does_not_corrupt() {
        let g = ring(10);
        let ins = inputs(10, |_| 6);
        let sync = run_pn::<Gossip>(&g, &(), &ins, 20).unwrap();
        let churn = ChurnPlan {
            plan: FaultPlan { rounds: vec![1, 2], fraction: 0.3, seed: 7 },
            round_ticks: 3,
            downtime: 11,
        };
        // Nonzero latency so the run spans virtual time and the scripted
        // crash instants actually fall inside it.
        let net = NetworkConfig::ideal()
            .with_delays(DelayModel::Constant(2))
            .with_loss(0.0, 4)
            .with_churn(churn)
            .with_seed(5);
        let res = run_async_pn::<Gossip>(&g, &(), &ins, 20, &net).unwrap();
        assert_eq!(res.outputs, sync.outputs);
        assert!(res.trace.crashes > 0 && res.trace.restarts > 0);
    }

    #[test]
    fn isolated_nodes_advance_and_halt() {
        let g = Graph::from_edges(3, &[]).unwrap();
        let res = run_async_pn::<Gossip>(&g, &(), &inputs(3, |_| 4), 10, &NetworkConfig::ideal())
            .unwrap();
        assert_eq!(res.outputs, vec![0, 1, 2]);
        assert_eq!(res.trace.rounds, 4);
    }

    #[test]
    fn round_limit_error() {
        let g = ring(4);
        let err = run_async_pn::<Gossip>(&g, &(), &inputs(4, |_| 9), 3, &NetworkConfig::ideal())
            .unwrap_err();
        assert_eq!(err, AsyncError::RoundLimit { limit: 3, halted: 0, n: 4 });
    }

    #[test]
    fn input_length_error() {
        let g = ring(4);
        let err = run_async_pn::<Gossip>(&g, &(), &[0, 0], 3, &NetworkConfig::ideal()).unwrap_err();
        assert_eq!(err, AsyncError::InputLength { got: 2, want: 4 });
    }

    #[test]
    fn event_limit_error() {
        let g = ring(8);
        let net = NetworkConfig::ideal().with_max_events(5);
        let err = run_async_pn::<Gossip>(&g, &(), &inputs(8, |_| 4), 10, &net).unwrap_err();
        assert!(matches!(err, AsyncError::EventLimit { limit: 5, .. }));
    }

    #[test]
    fn seeded_determinism_whole_trace() {
        let g = ring(14);
        let ins = inputs(14, |v| v % 3 + 2);
        let net = NetworkConfig::ideal()
            .with_delays(DelayModel::Exponential { mean: 6 })
            .with_loss(0.1, 5)
            .with_seed(1234);
        let a = run_async_pn::<Gossip>(&g, &(), &ins, 30, &net).unwrap();
        let b = run_async_pn::<Gossip>(&g, &(), &ins, 30, &net).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.trace, b.trace);
        let other =
            run_async_pn::<Gossip>(&g, &(), &ins, 30, &net.clone().with_seed(4321)).unwrap();
        assert_ne!(a.trace.event_hash, other.trace.event_hash, "different seed, different trace");
    }

    #[test]
    fn ideal_trace_matches_sync_for_uniform_halting() {
        // Uniform halting round: every node sends every round, so unique
        // receipts coincide with the synchronous all-nodes-send accounting.
        let g = ring(9);
        let ins = inputs(9, |_| 5);
        let sync = run_pn::<Gossip>(&g, &(), &ins, 10).unwrap();
        let res = run_async_pn::<Gossip>(&g, &(), &ins, 10, &NetworkConfig::ideal()).unwrap();
        assert_eq!(res.trace.delivered_trace(), sync.trace);
        assert_eq!(res.trace.duplicates, 0);
        assert_eq!(res.trace.retransmissions, 0);
        assert_eq!(res.trace.acks, res.trace.sent);
    }
}

//! Network scenario configuration: per-link latency distributions, jitter,
//! FIFO/non-FIFO links, probabilistic loss with retransmission, and
//! crash/restart churn — all driven by one explicit seed, so a
//! [`NetworkConfig`] names a *bit-reproducible* asynchronous execution.

use anonet_gen::Rng;
use anonet_selfstab::FaultPlan;

/// Per-message link latency, in virtual ticks.
///
/// Every variant is sampled from the runtime's seeded RNG in event-loop
/// order, so a given `(NetworkConfig, graph, inputs)` triple always produces
/// the same delays.
#[derive(Clone, Debug, PartialEq)]
pub enum DelayModel {
    /// Every message arrives in the same tick it was sent. Together with
    /// lossless FIFO links this is the regime in which the runtime is
    /// property-tested bit-identical to the synchronous engine.
    Zero,
    /// Every message takes exactly `ticks`.
    Constant(u64),
    /// Uniform per-message latency in `lo..=hi` (pure jitter).
    Uniform {
        /// Minimum latency.
        lo: u64,
        /// Maximum latency (inclusive).
        hi: u64,
    },
    /// Geometric per-message latency with the given mean — the discrete
    /// analogue of exponential service times (see [`Rng::geometric`]).
    Exponential {
        /// Mean latency in ticks.
        mean: u64,
    },
    /// Heterogeneous links: each directed arc gets a *base* latency sampled
    /// once from `lo..=hi` at construction, plus per-message jitter in
    /// `0..=jitter`. This is the "per-link latency distribution" knob: two
    /// messages on the same link share the base, different links differ.
    PerLink {
        /// Minimum per-link base latency.
        lo: u64,
        /// Maximum per-link base latency (inclusive).
        hi: u64,
        /// Per-message jitter bound (inclusive).
        jitter: u64,
    },
}

impl DelayModel {
    /// Samples the base latency of one directed link (0 unless [`PerLink`]).
    ///
    /// [`PerLink`]: DelayModel::PerLink
    pub(crate) fn sample_link_base(&self, rng: &mut Rng) -> u64 {
        match self {
            DelayModel::PerLink { lo, hi, .. } => rng.range_u64(*lo, *hi),
            _ => 0,
        }
    }

    /// Samples one message's latency on a link with the given base.
    pub(crate) fn sample(&self, base: u64, rng: &mut Rng) -> u64 {
        match self {
            DelayModel::Zero => 0,
            DelayModel::Constant(t) => *t,
            DelayModel::Uniform { lo, hi } => rng.range_u64(*lo, *hi),
            DelayModel::Exponential { mean } => rng.geometric(*mean),
            DelayModel::PerLink { jitter, .. } => {
                base + if *jitter > 0 { rng.range_u64(0, *jitter) } else { 0 }
            }
        }
    }

    /// Whether this model can reorder two messages on the *same* link (only
    /// relevant with [`NetworkConfig::non_fifo`]; constant-latency models
    /// never reorder regardless).
    pub fn can_reorder(&self) -> bool {
        !matches!(self, DelayModel::Zero | DelayModel::Constant(_))
    }
}

/// Probabilistic message loss plus the retransmission policy that recovers
/// from it.
///
/// Loss applies independently to every transmission — payload *and*
/// acknowledgement — so the synchronizer's retransmit-until-acked loop is
/// exercised in both directions.
#[derive(Clone, Debug, PartialEq)]
pub struct LossModel {
    /// Probability that any single transmission is dropped, in `[0, 1)`.
    pub drop_prob: f64,
    /// Retransmission timeout in ticks (≥ 1): a node resends all its
    /// unacknowledged messages every `rto` ticks until they are acked.
    pub rto: u64,
}

impl Default for LossModel {
    fn default() -> Self {
        LossModel { drop_prob: 0.0, rto: 16 }
    }
}

/// Crash/restart churn scripted by a [`FaultPlan`] — the *same* fault
/// scripting type the self-stabilization experiments use, so one plan
/// describes "when and how many nodes fail" for both fault models.
///
/// Interpretation: at virtual time `round_ticks · r` for every round `r` in
/// `plan.rounds`, `⌈n · plan.fraction⌉` victim nodes (chosen exactly as
/// [`FaultPlan::victims`] chooses memory-corruption victims) **crash**; each
/// restarts `downtime` ticks later. The runtime models crash-recovery with
/// stable storage: a crashed node drops every arrival unacknowledged (its
/// neighbours' retransmission timers recover the messages after the
/// restart), and its own algorithm state survives the crash.
#[derive(Clone, Debug)]
pub struct ChurnPlan {
    /// When and how many nodes crash (see [`FaultPlan`]); the plan's `seed`
    /// drives victim selection independently of the network seed.
    pub plan: FaultPlan,
    /// Ticks per scripted "round" — converts the plan's round numbers into
    /// virtual crash times (must be ≥ 1).
    pub round_ticks: u64,
    /// How long a crashed node stays down, in ticks (must be ≥ 1).
    pub downtime: u64,
}

/// One asynchronous network scenario: delays, loss, churn, link ordering,
/// and the seed that makes the whole run bit-reproducible.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Per-message link latency model.
    pub delays: DelayModel,
    /// Loss probability and retransmission timeout.
    pub loss: LossModel,
    /// Optional crash/restart churn script.
    pub churn: Option<ChurnPlan>,
    /// Enforce per-link FIFO delivery: a message never overtakes an earlier
    /// message on the same directed link (arrival times are clamped to be
    /// non-decreasing per link). With `false`, jittery delay models may
    /// reorder messages and the synchronizer's round tags do the sorting.
    pub fifo: bool,
    /// Seed for delay sampling, loss coin flips, and link-base assignment.
    pub seed: u64,
    /// Safety valve: abort with [`AsyncError::EventLimit`] after this many
    /// processed events (default `u64::MAX`, i.e. unlimited).
    ///
    /// [`AsyncError::EventLimit`]: crate::runtime::AsyncError::EventLimit
    pub max_events: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            delays: DelayModel::Zero,
            loss: LossModel::default(),
            churn: None,
            fifo: true,
            seed: 0,
            max_events: u64::MAX,
        }
    }
}

impl NetworkConfig {
    /// The ideal network: zero delay, no loss, no churn, FIFO links. In this
    /// regime the runtime is bit-identical to the synchronous engine
    /// (property-tested).
    pub fn ideal() -> Self {
        NetworkConfig::default()
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the delay model (builder style).
    pub fn with_delays(mut self, delays: DelayModel) -> Self {
        self.delays = delays;
        self
    }

    /// Sets loss probability and retransmission timeout (builder style).
    pub fn with_loss(mut self, drop_prob: f64, rto: u64) -> Self {
        assert!((0.0..1.0).contains(&drop_prob), "drop_prob must be in [0, 1)");
        assert!(rto >= 1, "rto must be at least 1 tick");
        self.loss = LossModel { drop_prob, rto };
        self
    }

    /// Attaches a churn script (builder style).
    pub fn with_churn(mut self, churn: ChurnPlan) -> Self {
        assert!(churn.round_ticks >= 1, "round_ticks must be at least 1");
        assert!(churn.downtime >= 1, "downtime must be at least 1");
        self.churn = Some(churn);
        self
    }

    /// Allows per-link reordering (builder style).
    pub fn non_fifo(mut self) -> Self {
        self.fifo = false;
        self
    }

    /// Caps the number of processed events (builder style).
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Whether any mechanism can lose a transmission, i.e. whether
    /// retransmission timers are needed at all. The ideal fast path skips
    /// timer events entirely when this is `false`.
    pub(crate) fn needs_timers(&self) -> bool {
        self.loss.drop_prob > 0.0 || self.churn.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_default() {
        let c = NetworkConfig::ideal();
        assert_eq!(c.delays, DelayModel::Zero);
        assert_eq!(c.loss.drop_prob, 0.0);
        assert!(c.churn.is_none());
        assert!(c.fifo);
        assert!(!c.needs_timers());
    }

    #[test]
    fn delay_sampling_respects_bounds() {
        let mut rng = Rng::new(3);
        let m = DelayModel::Uniform { lo: 2, hi: 9 };
        for _ in 0..200 {
            let d = m.sample(0, &mut rng);
            assert!((2..=9).contains(&d));
        }
        let pl = DelayModel::PerLink { lo: 10, hi: 20, jitter: 5 };
        let base = pl.sample_link_base(&mut rng);
        assert!((10..=20).contains(&base));
        for _ in 0..200 {
            let d = pl.sample(base, &mut rng);
            assert!((base..=base + 5).contains(&d));
        }
        assert_eq!(DelayModel::Zero.sample(0, &mut rng), 0);
        assert_eq!(DelayModel::Constant(7).sample(0, &mut rng), 7);
    }

    #[test]
    fn reorder_classification() {
        assert!(!DelayModel::Zero.can_reorder());
        assert!(!DelayModel::Constant(4).can_reorder());
        assert!(DelayModel::Uniform { lo: 0, hi: 3 }.can_reorder());
        assert!(DelayModel::Exponential { mean: 5 }.can_reorder());
        assert!(DelayModel::PerLink { lo: 1, hi: 2, jitter: 1 }.can_reorder());
    }

    #[test]
    fn needs_timers_under_loss_or_churn() {
        assert!(NetworkConfig::ideal().with_loss(0.1, 8).needs_timers());
        let churn = ChurnPlan {
            plan: FaultPlan { rounds: vec![2], fraction: 0.3, seed: 5 },
            round_ticks: 10,
            downtime: 7,
        };
        assert!(NetworkConfig::ideal().with_churn(churn).needs_timers());
    }
}

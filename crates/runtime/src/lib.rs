//! # anonet-runtime
//!
//! Asynchronous, event-driven execution of the paper's node programs. The
//! algorithms in `anonet-core` and `anonet-baselines` are stated for
//! *synchronous* anonymous networks, but their headline property —
//! deterministic, constant-time, id-free — is exactly what makes them
//! deployable in *asynchronous* networks via a local synchronizer (the §1.5
//! observation this crate turns into an executable claim). Every existing
//! [`PnAlgorithm`](anonet_sim::PnAlgorithm) /
//! [`BcastAlgorithm`](anonet_sim::BcastAlgorithm) runs here **unchanged**.
//!
//! The pieces:
//!
//! * [`config::NetworkConfig`] — one scenario: per-link latency
//!   distributions with jitter ([`config::DelayModel`]), FIFO or reordering
//!   links, probabilistic loss with retransmission
//!   ([`config::LossModel`]), crash/restart churn scripted by the
//!   self-stabilization crate's `FaultPlan` ([`config::ChurnPlan`]), and the
//!   seed that makes a run bit-reproducible;
//! * [`events::EventQueue`](crate::events) — a seeded binary-heap
//!   discrete-event queue ordered by `(time, insertion seq)`, so the whole
//!   event trace is deterministic (witnessed by
//!   [`AsyncTrace::event_hash`]);
//! * [`runtime::AsyncRuntime`] — the α-synchronizer event loop: round-tagged
//!   messages, acks, retransmit-until-acked, per-port inboxes for the
//!   current and next round, and on-demand default replies from halted
//!   nodes. The module docs carry the correctness argument; the headline is
//!   that outputs are **bit-identical to the synchronous engine** under
//!   every configuration (property-tested for zero-delay lossless FIFO as
//!   the acceptance regime, and beyond);
//! * [`scenario`] — named ready-made configurations (`ideal`, `datacenter`,
//!   `wan`, `lossy_radio`, `churny_radio`).
//!
//! `MessageSize` instrumentation carries over: [`AsyncTrace`] counts unique
//! receipts (comparable with the synchronous
//! [`Trace`](anonet_sim::Trace) for fixed-schedule algorithms) and
//! separately accounts retransmitted, dropped, and synchronizer-overhead
//! bits, so nothing is silently undercounted when the network misbehaves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod events;
pub mod runtime;
pub mod scenario;

pub use config::{ChurnPlan, DelayModel, LossModel, NetworkConfig};
pub use runtime::{
    run_async_bcast, run_async_engine, run_async_pn, AsyncError, AsyncResult, AsyncRuntime,
    AsyncTrace,
};

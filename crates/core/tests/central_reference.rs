//! An independent *centralized* re-implementation of the §3 algorithm,
//! written straight from the paper's pseudocode (global view, no message
//! passing), compared **exactly** against the distributed implementation.
//! Along the way it verifies Lemma 1 (the maximum degree of G_yc drops every
//! Phase I iteration) and Lemma 2 (every colour element q satisfies
//! 0 < q ≤ W and q·(Δ!)^Δ ∈ ℕ) on every instance it touches.

use anonet_bigmath::{BigRat, PackingValue, UBig};
use anonet_core::encode::{cv_step, cv_step_root, SeqEncoder};
use anonet_core::vc_pn::{run_edge_packing_with, VcConfig};
use anonet_gen::{family, WeightSpec};
use anonet_sim::Graph;
use std::cmp::Ordering;

type V = BigRat;

/// Centralized §3: returns (y per edge, cover).
fn central_sec3(g: &Graph, weights: &[u64], delta: usize, w_bound: u64) -> (Vec<V>, Vec<bool>) {
    let n = g.n();
    let m = g.m();
    let mut y: Vec<V> = vec![V::zero(); m];
    let mut seq: Vec<Vec<V>> = vec![Vec::new(); n];
    let resid = |y: &Vec<V>, v: usize| -> V {
        let mut r = V::from_u64(weights[v]);
        for a in g.arc_range(v) {
            r = r.sub(&y[g.edge_of(a)]);
        }
        r
    };

    // ---- Phase I: Δ iterations of steps (i)–(iii) ----
    let scale = UBig::factorial(delta as u64).pow(delta as u64);
    let mut prev_max_degyc = usize::MAX;
    for _it in 0..delta {
        let r: Vec<V> = (0..n).map(|v| resid(&y, v)).collect();
        let in_eyc: Vec<bool> = (0..m)
            .map(|e| {
                let (u, v) = g.edge(e);
                r[u].is_positive() && r[v].is_positive() && seq[u] == seq[v]
            })
            .collect();
        let degyc: Vec<usize> =
            (0..n).map(|v| g.arc_range(v).filter(|&a| in_eyc[g.edge_of(a)]).count()).collect();
        // Lemma 1: the maximum degree of G_yc decreases by ≥ 1 per iteration.
        let max_degyc = degyc.iter().copied().max().unwrap_or(0);
        assert!(
            prev_max_degyc == usize::MAX || max_degyc < prev_max_degyc || max_degyc == 0,
            "Lemma 1 violated: max deg {prev_max_degyc} -> {max_degyc}"
        );
        prev_max_degyc = max_degyc;

        let x: Vec<Option<V>> = (0..n)
            .map(|v| (degyc[v] > 0).then(|| r[v].div(&V::from_u64(degyc[v] as u64))))
            .collect();
        for e in 0..m {
            if in_eyc[e] {
                let (u, v) = g.edge(e);
                let (xu, xv) = (x[u].as_ref().unwrap(), x[v].as_ref().unwrap());
                y[e] = y[e].add(if xu <= xv { xu } else { xv });
            }
        }
        for v in 0..n {
            let q = x[v].clone().unwrap_or_else(V::one);
            // Lemma 2: 0 < q ≤ W and q (Δ!)^Δ ∈ ℕ.
            assert!(q.is_positive(), "Lemma 2: colour element must be positive");
            assert!(q <= V::from_u64(w_bound), "Lemma 2: q ≤ W");
            assert!(
                q.checked_scale_to_uint(&scale).is_some(),
                "Lemma 2: q·(Δ!)^Δ must be integral"
            );
            seq[v].push(q);
        }
    }
    // Phase I postcondition: E_yc is empty.
    {
        let r: Vec<V> = (0..n).map(|v| resid(&y, v)).collect();
        for (e, u, v) in g.edge_iter() {
            let _ = e;
            assert!(
                !(r[u].is_positive() && r[v].is_positive() && seq[u] == seq[v]),
                "E_yc nonempty after Δ iterations"
            );
        }
    }

    // ---- Phase II ----
    let r: Vec<V> = (0..n).map(|v| resid(&y, v)).collect();
    let active: Vec<bool> = r.iter().map(|x| x.is_positive()).collect();
    // A-edges oriented lower → higher colour (lexicographic sequence order).
    let in_a: Vec<bool> = (0..m)
        .map(|e| {
            let (u, v) = g.edge(e);
            active[u] && active[v]
        })
        .collect();
    // Forest assignment: each node ranks its outgoing A-edges by port order.
    let mut forest_of_edge: Vec<Option<usize>> = vec![None; m];
    let mut parent_port: Vec<Vec<Option<usize>>> = vec![vec![None; delta]; n]; // node -> forest -> port
    let mut children: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); delta]; n];
    for u in 0..n {
        let mut rank = 0usize;
        for a in g.arc_range(u) {
            let e = g.edge_of(a);
            let v = g.head(a);
            if in_a[e] && seq[u].cmp(&seq[v]) == Ordering::Less {
                forest_of_edge[e] = Some(rank);
                parent_port[u][rank] = Some(a - g.arc_range(u).start);
                rank += 1;
            }
        }
    }
    for v in 0..n {
        for (p, a) in g.arc_range(v).enumerate() {
            let e = g.edge_of(a);
            let u = g.head(a);
            // v is the parent if u oriented this edge into a forest.
            if let Some(i) = forest_of_edge[e] {
                if seq[u].cmp(&seq[v]) == Ordering::Less {
                    children[v][i].push(p);
                }
            }
        }
    }

    // Cole–Vishkin per forest.
    let cfg = VcConfig::new(delta, w_bound);
    let enc = SeqEncoder::phase1(delta, w_bound);
    let mut colours: Vec<Vec<Option<UBig>>> = (0..n)
        .map(|v| {
            (0..delta)
                .map(|i| {
                    (parent_port[v][i].is_some() || !children[v][i].is_empty())
                        .then(|| enc.encode(&seq[v]))
                })
                .collect()
        })
        .collect();
    let parent_of =
        |v: usize, i: usize| -> Option<usize> { parent_port[v][i].map(|p| g.head(g.arc(v, p))) };
    for _ in 0..cfg.cv_steps {
        let snapshot = colours.clone();
        for v in 0..n {
            for i in 0..delta {
                if snapshot[v][i].is_none() {
                    continue;
                }
                let own = snapshot[v][i].as_ref().unwrap();
                colours[v][i] = Some(match parent_of(v, i) {
                    Some(par) => cv_step(own, snapshot[par][i].as_ref().unwrap()),
                    None => cv_step_root(own),
                });
            }
        }
    }
    // 3 × (shift-down + eliminate 5, 4, 3).
    for elim in [5u64, 4, 3] {
        let snapshot = colours.clone();
        for v in 0..n {
            for i in 0..delta {
                if snapshot[v][i].is_none() {
                    continue;
                }
                colours[v][i] = Some(match parent_of(v, i) {
                    Some(par) => snapshot[par][i].clone().unwrap(),
                    None => {
                        let cur = snapshot[v][i].as_ref().unwrap().to_u64().unwrap();
                        UBig::from_u64((0..3).find(|&c| c != cur).unwrap())
                    }
                });
            }
        }
        let snapshot = colours.clone();
        for v in 0..n {
            for i in 0..delta {
                if snapshot[v][i].is_none()
                    || snapshot[v][i].as_ref().unwrap().to_u64() != Some(elim)
                {
                    continue;
                }
                let mut forbidden = [false; 6];
                if let Some(par) = parent_of(v, i) {
                    forbidden[snapshot[par][i].as_ref().unwrap().to_u64().unwrap() as usize] = true;
                }
                for &p in &children[v][i] {
                    let c = g.head(g.arc(v, p));
                    forbidden[snapshot[c][i].as_ref().unwrap().to_u64().unwrap() as usize] = true;
                }
                colours[v][i] =
                    Some(UBig::from_u64((0..3).find(|&c| !forbidden[c as usize]).unwrap()));
            }
        }
    }

    // Star saturation, (forest, colour) classes in sequence.
    let mut r: Vec<V> = (0..n).map(|v| resid(&y, v)).collect();
    for i in 0..delta {
        for j in 0..3u64 {
            // Gather leaves per root.
            let mut per_root: Vec<Vec<(usize, V)>> = vec![Vec::new(); n]; // root -> (edge, r_leaf)
            for u in 0..n {
                if let Some(p) = parent_port[u][i] {
                    if colours[u][i].as_ref().and_then(UBig::to_u64) == Some(j)
                        && r[u].is_positive()
                    {
                        let a = g.arc(u, p);
                        per_root[g.head(a)].push((g.edge_of(a), r[u].clone()));
                    }
                }
            }
            for v in 0..n {
                if per_root[v].is_empty() {
                    continue;
                }
                if !r[v].is_positive() {
                    continue; // grants of zero
                }
                let total = anonet_bigmath::value::sum(per_root[v].iter().map(|(_, ru)| ru));
                if total < r[v] {
                    for (e, ru) in per_root[v].clone() {
                        y[e] = y[e].add(&ru);
                        let (a, b) = g.edge(e);
                        let leaf = if a == v { b } else { a };
                        r[leaf] = r[leaf].sub(&ru);
                    }
                    r[v] = r[v].sub(&total);
                } else {
                    for (e, ru) in per_root[v].clone() {
                        let grant = ru.mul(&r[v]).div(&total);
                        y[e] = y[e].add(&grant);
                        let (a, b) = g.edge(e);
                        let leaf = if a == v { b } else { a };
                        r[leaf] = r[leaf].sub(&grant);
                    }
                    r[v] = V::zero();
                }
            }
        }
    }

    let cover: Vec<bool> = (0..n).map(|v| r[v].is_zero()).collect();
    (y, cover)
}

fn compare(g: &Graph, weights: &[u64]) {
    let delta = g.max_degree();
    let w_bound = weights.iter().copied().max().unwrap_or(1);
    let dist = run_edge_packing_with::<V>(g, weights, delta, w_bound, 1).unwrap();
    let (y, cover) = central_sec3(g, weights, delta, w_bound);
    assert_eq!(dist.cover, cover, "covers differ from the centralized reference");
    assert_eq!(dist.packing.y, y, "packings differ from the centralized reference");
}

#[test]
fn matches_on_named_families() {
    for (g, seed) in [
        (family::path(7), 0u64),
        (family::cycle(8), 1),
        (family::cycle(9), 2),
        (family::star(5), 3),
        (family::grid(4, 3), 4),
        (family::petersen(), 5),
        (family::frucht(), 6),
        (family::complete(5), 7),
        (family::caterpillar(4, 2), 8),
    ] {
        let w = WeightSpec::Uniform(20).draw_many(g.n(), seed + 40);
        compare(&g, &w);
        compare(&g, &vec![1; g.n()]);
    }
}

#[test]
fn matches_on_random_graphs() {
    for seed in 0..12u64 {
        let g = family::gnp_capped(15, 0.3, 4, seed);
        let w = WeightSpec::LogUniform(1 << 12).draw_many(15, seed + 7);
        compare(&g, &w);
    }
}

#[test]
fn matches_on_regular_weighted() {
    for seed in 0..6u64 {
        let g = family::random_regular(14, 3, seed);
        let w = WeightSpec::Bimodal { w: 500, cheap_prob: 0.4 }.draw_many(14, seed + 3);
        compare(&g, &w);
    }
}

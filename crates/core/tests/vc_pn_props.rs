//! Correctness suite for the §3 edge-packing algorithm: every run must
//! produce a feasible, **maximal** edge packing whose saturated nodes form a
//! vertex cover of weight ≤ 2·Σy(e) (the Bar-Yehuda–Even certificate), in
//! exactly the fixed round schedule, on both exact value types, and
//! invariantly under covering lifts.

use anonet_bigmath::{AutoRat, BigRat, PackingValue, Rat128};
use anonet_core::vc_pn::{run_edge_packing, run_edge_packing_with, VcConfig};
use anonet_gen::{family, WeightSpec};
use anonet_sim::cover::lift;
use anonet_sim::Graph;
use proptest::prelude::*;

/// All §3 guarantees in one checker.
fn check_run<V: PackingValue>(g: &Graph, weights: &[u64]) {
    let run = run_edge_packing::<V>(g, weights).expect("run completes");
    // Feasible.
    assert!(run.packing.is_feasible(g, weights), "packing must be feasible");
    // Maximal: every edge saturated.
    assert!(run.packing.is_maximal(g, weights), "packing must be maximal");
    // The cover is exactly the saturated nodes.
    assert_eq!(run.cover, run.packing.saturated_nodes(g, weights));
    // The cover covers every edge.
    for (_, u, v) in g.edge_iter() {
        assert!(run.cover[u] || run.cover[v], "edge {{{u},{v}}} uncovered");
    }
    // Certificate: w(C) <= 2 * dual value  (and dual <= OPT, so ratio <= 2).
    let cover_weight: u64 = (0..g.n()).filter(|&v| run.cover[v]).map(|v| weights[v]).sum();
    let two_dual = run.packing.dual_value().mul(&V::from_u64(2));
    assert!(
        V::from_u64(cover_weight) <= two_dual,
        "certificate violated: w(C) = {cover_weight} > 2*dual = {two_dual:?}"
    );
    // Round count equals the fixed schedule.
    let delta = g.max_degree();
    let w = weights.iter().copied().max().unwrap_or(1);
    let cfg = VcConfig::new(delta, w.max(1));
    assert_eq!(run.trace.rounds, cfg.total_rounds(), "schedule must be exact");
}

#[test]
fn single_edge_unweighted() {
    let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
    let run = run_edge_packing::<BigRat>(&g, &[1, 1]).unwrap();
    // y(e) = 1 saturates... no: both nodes have w = 1, Phase I iteration 1:
    // both offer 1/1; edge gets min = 1 saturating BOTH nodes.
    assert_eq!(run.packing.y[0], BigRat::one());
    assert_eq!(run.cover, vec![true, true]);
    check_run::<BigRat>(&g, &[1, 1]);
}

#[test]
fn single_edge_weighted_asymmetric() {
    let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
    // w = (1, 5): the edge can only reach y = 1; node 0 saturates.
    let run = run_edge_packing::<BigRat>(&g, &[1, 5]).unwrap();
    assert_eq!(run.packing.y[0], BigRat::one());
    assert_eq!(run.cover, vec![true, false]);
    // Optimal cover is {0} with weight 1 — the algorithm matches the optimum.
    check_run::<BigRat>(&g, &[1, 5]);
}

#[test]
fn triangle_unweighted_symmetric() {
    // Regular graph with equal weights: Phase I alone saturates everything
    // (the case where multicolouring is impossible); y(e) = 1/2, all nodes in
    // the cover (ratio exactly 3/2 vs OPT = 2).
    let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
    let run = run_edge_packing::<BigRat>(&g, &[1, 1, 1]).unwrap();
    for e in 0..3 {
        assert_eq!(run.packing.y[e], BigRat::from_frac(1, 2));
    }
    assert_eq!(run.cover, vec![true, true, true]);
    check_run::<BigRat>(&g, &[1, 1, 1]);
}

#[test]
fn path_weighted_middle_cheap() {
    // Path a - b - c with w(b) small: b should saturate, covering both edges.
    let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let run = run_edge_packing::<BigRat>(&g, &[10, 1, 10]).unwrap();
    assert!(run.cover[1]);
    check_run::<BigRat>(&g, &[10, 1, 10]);
    let cover_weight: u64 = (0..3).filter(|&v| run.cover[v]).map(|v| [10, 1, 10][v]).sum();
    assert!(cover_weight <= 2, "OPT = 1, certificate allows at most 2, got {cover_weight}");
}

#[test]
fn star_heavy_hub() {
    let g = family::star(6);
    let mut w = vec![100u64; 7];
    w[0] = 3; // cheap hub
    let run = run_edge_packing::<BigRat>(&g, &w).unwrap();
    assert!(run.cover[0], "cheap hub must be saturated");
    check_run::<BigRat>(&g, &w);
}

#[test]
fn schedule_is_exact_formula() {
    // total = 8Δ + T_cv + 8 (see VcConfig docs).
    for (delta, w) in [(0usize, 1u64), (1, 1), (2, 1), (3, 7), (5, 1 << 20), (8, u64::MAX)] {
        let cfg = VcConfig::new(delta, w);
        assert_eq!(
            cfg.total_rounds(),
            8 * delta as u64 + cfg.cv_steps as u64 + 8,
            "Δ={delta}, W={w}"
        );
        // Theorem 1 shape: T_cv is tiny (log* of anything real is <= 6).
        assert!(cfg.cv_steps <= 7, "T_cv = {} too large", cfg.cv_steps);
    }
}

#[test]
fn rounds_independent_of_n() {
    // The same (Δ, W) gives the same round count regardless of n — the
    // "strictly local" property that distinguishes this algorithm in Table 1.
    let mut counts = Vec::new();
    for n in [8usize, 64, 512] {
        let g = family::random_regular(n, 4, 99);
        let w = WeightSpec::Uniform(100).draw_many(n, 5);
        let run = run_edge_packing_with::<BigRat>(&g, &w, 4, 100, 1).unwrap();
        assert!(run.packing.is_maximal(&g, &w));
        counts.push(run.trace.rounds);
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "rounds varied with n: {counts:?}");
}

#[test]
fn families_unweighted() {
    for (name, g) in [
        ("path", family::path(17)),
        ("cycle", family::cycle(16)),
        ("cycle-odd", family::cycle(15)),
        ("star", family::star(9)),
        ("grid", family::grid(6, 5)),
        ("torus", family::torus(4, 4)),
        ("hypercube", family::hypercube(4)),
        ("petersen", family::petersen()),
        ("frucht", family::frucht()),
        ("complete", family::complete(7)),
        ("caterpillar", family::caterpillar(5, 3)),
    ] {
        let w = vec![1u64; g.n()];
        check_run::<BigRat>(&g, &w);
        check_run::<Rat128>(&g, &w);
        let _ = name;
    }
}

#[test]
fn families_weighted() {
    for seed in 0..3u64 {
        for g in [family::grid(5, 4), family::random_regular(20, 3, seed), family::petersen()] {
            for spec in [
                WeightSpec::Uniform(10),
                WeightSpec::Uniform(1 << 16),
                WeightSpec::Bimodal { w: 1 << 20, cheap_prob: 0.3 },
            ] {
                let w = spec.draw_many(g.n(), seed * 31 + 7);
                check_run::<BigRat>(&g, &w);
            }
        }
    }
}

#[test]
fn huge_weights_w_2_64() {
    // "the algorithms are fast even if one chooses a very large value of W
    // such as W = 2^64" (§1.4).
    let g = family::random_regular(16, 3, 4);
    let w = WeightSpec::Uniform(u64::MAX).draw_many(16, 11);
    let run = run_edge_packing_with::<BigRat>(&g, &w, 3, u64::MAX, 1).unwrap();
    assert!(run.packing.is_maximal(&g, &w));
    let cfg = VcConfig::new(3, u64::MAX);
    assert_eq!(run.trace.rounds, cfg.total_rounds());
}

#[test]
fn rat128_matches_bigrat() {
    // Same instance, both value types: identical packings and covers.
    for seed in 0..5u64 {
        let g = family::gnp_capped(18, 0.25, 4, seed);
        let w = WeightSpec::Uniform(30).draw_many(g.n(), seed + 100);
        let a = run_edge_packing::<BigRat>(&g, &w).unwrap();
        let b = run_edge_packing::<Rat128>(&g, &w).unwrap();
        assert_eq!(a.cover, b.cover, "seed {seed}");
        for (e, (ya, yb)) in a.packing.y.iter().zip(&b.packing.y).enumerate() {
            assert_eq!(ya.numer().to_i128(), Some(yb.numer()), "edge {e} numerator, seed {seed}");
            assert_eq!(ya.denom().to_u128(), Some(yb.denom() as u128), "edge {e} denominator");
        }
    }
}

#[test]
fn autorat_matches_bigrat_across_promotion_boundary() {
    // Weights straddling u32::MAX push intermediate star-phase rationals
    // past i128 on some edges but not others, so the AutoRat run exercises
    // both arms and the fixed↔big promotion/demotion transitions. The fast
    // path must stay bit-identical to the all-BigRat reference: same covers,
    // same packing values, and the same Trace (wire_bits agrees across arms).
    for seed in 0..4u64 {
        let g = family::gnp_capped(16, 0.3, 4, seed);
        let w: Vec<u64> = (0..g.n() as u64)
            .map(|v| {
                if (v + seed) % 2 == 0 {
                    u32::MAX as u64 - (v + seed) % 7
                } else {
                    u32::MAX as u64 + 1 + (v * 977 + seed)
                }
            })
            .collect();
        let a = run_edge_packing::<BigRat>(&g, &w).unwrap();
        let b = run_edge_packing::<AutoRat>(&g, &w).unwrap();
        assert_eq!(a.cover, b.cover, "seed {seed}");
        assert_eq!(a.trace, b.trace, "trace must be bit-identical, seed {seed}");
        for (e, (ya, yb)) in a.packing.y.iter().zip(&b.packing.y).enumerate() {
            assert_eq!(*ya, yb.to_bigrat(), "edge {e} value, seed {seed}");
        }
        assert_eq!(a.packing.dual_value(), b.packing.dual_value().to_bigrat(), "seed {seed}");
    }
}

#[test]
fn isolated_nodes_are_excluded() {
    let g = Graph::from_edges(5, &[(0, 1)]).unwrap();
    let run = run_edge_packing::<BigRat>(&g, &[1, 1, 7, 7, 7]).unwrap();
    assert!(!run.cover[2] && !run.cover[3] && !run.cover[4]);
    check_run::<BigRat>(&g, &[1, 1, 7, 7, 7]);
}

#[test]
fn empty_graph() {
    let g = Graph::from_edges(4, &[]).unwrap();
    let run = run_edge_packing::<BigRat>(&g, &[5, 5, 5, 5]).unwrap();
    assert_eq!(run.cover, vec![false; 4]);
    assert!(run.packing.y.is_empty());
}

#[test]
fn lift_invariance() {
    // §7 / Suomela survey §5: deterministic PN algorithms commute with
    // covering maps — the lift of a node computes exactly the node's output.
    let g = family::petersen();
    let w = WeightSpec::Uniform(9).draw_many(10, 21);
    let base = run_edge_packing::<BigRat>(&g, &w).unwrap();

    let l = lift(&g, 3, 1234);
    let lifted_w: Vec<u64> = (0..l.graph.n()).map(|vp| w[l.projection[vp]]).collect();
    let lifted = run_edge_packing::<BigRat>(&l.graph, &lifted_w).unwrap();

    for vp in 0..l.graph.n() {
        assert_eq!(
            lifted.cover[vp], base.cover[l.projection[vp]],
            "lift node {vp} disagrees with base node {}",
            l.projection[vp]
        );
    }
    assert!(lifted.packing.is_maximal(&l.graph, &lifted_w));
}

#[test]
fn port_numbering_can_change_output_but_not_guarantees() {
    // Different port orders may give different (valid) covers.
    let g = family::grid(4, 4);
    let w = WeightSpec::Uniform(50).draw_many(16, 3);
    check_run::<BigRat>(&g, &w);
    let reordered = g.reorder_ports(|_, old| old.iter().rev().copied().collect());
    check_run::<BigRat>(&reordered, &w);
}

#[test]
fn explicit_global_bounds_allowed_to_exceed_instance() {
    // Δ and W are upper bounds; running with slack must stay correct.
    let g = family::cycle(8);
    let w = vec![3u64; 8];
    let run = run_edge_packing_with::<BigRat>(&g, &w, 5, 1000, 1).unwrap();
    assert!(run.packing.is_maximal(&g, &w));
    let cfg = VcConfig::new(5, 1000);
    assert_eq!(run.trace.rounds, cfg.total_rounds());
}

#[test]
fn parallel_engine_identical() {
    let g = family::random_regular(64, 4, 17);
    let w = WeightSpec::Uniform(64).draw_many(64, 18);
    let seq = run_edge_packing_with::<BigRat>(&g, &w, 4, 64, 1).unwrap();
    let par = run_edge_packing_with::<BigRat>(&g, &w, 4, 64, 4).unwrap();
    assert_eq!(seq.cover, par.cover);
    assert_eq!(seq.packing, par.packing);
    assert_eq!(seq.trace, par.trace);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_gnp_instances(
        n in 2usize..28,
        p in 0.05f64..0.6,
        cap in 2usize..6,
        wmax in 1u64..1000,
        seed in any::<u64>(),
    ) {
        let g = family::gnp_capped(n, p, cap, seed);
        let w = WeightSpec::Uniform(wmax).draw_many(n, seed ^ 0xabcd);
        check_run::<BigRat>(&g, &w);
    }

    #[test]
    fn random_regular_instances(
        half_n in 4usize..12,
        d in 2usize..5,
        seed in any::<u64>(),
    ) {
        let n = 2 * half_n;
        let g = family::random_regular(n, d, seed);
        let w = WeightSpec::LogUniform(1 << 30).draw_many(n, seed ^ 0x1234);
        check_run::<BigRat>(&g, &w);
    }

    #[test]
    fn random_trees(
        n in 2usize..40,
        cap in 2usize..6,
        seed in any::<u64>(),
    ) {
        let g = family::random_tree(n, cap, seed);
        let w = WeightSpec::Uniform(100).draw_many(n, seed ^ 0x77);
        check_run::<BigRat>(&g, &w);
    }
}

//! Correctness suite for the §4 fractional-packing algorithm and the §5
//! broadcast-model simulation: feasibility, maximality (Theorem 2), the
//! f-approximation certificate, exact round schedules, the Fig. 3 symmetry
//! lower bound, and §4-on-incidence ≡ §5-on-G equivalence.

use anonet_bigmath::{BigRat, PackingValue, Rat128};
use anonet_core::certify::certify_set_cover;
use anonet_core::sc_bcast::{
    run_fractional_packing, run_fractional_packing_many, run_fractional_packing_with, ScConfig,
};
use anonet_core::trivial::{run_trivial, trivial_bound};
use anonet_core::vc_bcast::{incidence_instance, run_vc_broadcast, VcBcastConfig};
use anonet_core::vc_pn::run_edge_packing;
use anonet_gen::{family, reduction, setcover, WeightSpec};
use anonet_sim::SetCoverInstance;
use proptest::prelude::*;

/// All §4 guarantees in one checker.
fn check_sc<V: PackingValue>(inst: &SetCoverInstance) {
    let run = run_fractional_packing::<V>(inst).expect("run completes");
    assert!(run.packing.is_feasible(inst), "packing must be feasible");
    assert!(run.packing.is_maximal(inst), "packing must be maximal (Theorem 2)");
    assert_eq!(run.cover, run.packing.saturated_subsets(inst));
    assert!(inst.is_cover(&run.cover), "saturated subsets must cover U");
    // Full certificate.
    let cert = certify_set_cover(inst, &run.packing, &run.cover).expect("certificate");
    assert!(cert.certified_ratio() <= inst.f().max(1) as f64 + 1e-9);
    // Exact schedule.
    let cfg = ScConfig::new(inst.f().max(1), inst.k().max(1), inst.max_weight());
    assert_eq!(run.trace.rounds, cfg.total_rounds(), "schedule must be exact");
}

#[test]
fn batched_runner_matches_individual_sc_runs() {
    let instances: Vec<SetCoverInstance> = (0..4u64)
        .map(|seed| setcover::random_bounded(12, 8, 2, 3, WeightSpec::Uniform(20), seed))
        .collect();
    for threads in [1usize, 3] {
        let batch = run_fractional_packing_many::<BigRat>(&instances, threads);
        for (inst, run) in instances.iter().zip(batch) {
            let run = run.unwrap();
            let solo = run_fractional_packing::<BigRat>(inst).unwrap();
            assert_eq!(run.cover, solo.cover, "threads={threads}");
            assert_eq!(run.packing.y, solo.packing.y, "threads={threads}");
            assert_eq!(run.trace, solo.trace, "threads={threads}");
        }
    }
}

#[test]
fn tiny_single_subset() {
    // One subset covering one element: must saturate.
    let inst = SetCoverInstance::new(1, &[vec![0]], vec![7]).unwrap();
    let run = run_fractional_packing::<BigRat>(&inst).unwrap();
    assert_eq!(run.cover, vec![true]);
    assert_eq!(run.packing.y[0], BigRat::from_u64(7));
    check_sc::<BigRat>(&inst);
}

#[test]
fn two_subsets_shared_element() {
    // e0 ∈ s0, s1 with w = (3, 5): y(e0) grows to 3 saturating s0.
    let inst = SetCoverInstance::new(1, &[vec![0], vec![0]], vec![3, 5]).unwrap();
    let run = run_fractional_packing::<BigRat>(&inst).unwrap();
    assert_eq!(run.packing.y[0], BigRat::from_u64(3));
    assert_eq!(run.cover, vec![true, false]);
    check_sc::<BigRat>(&inst);
}

#[test]
fn chain_instance() {
    // s0={e0,e1} s1={e1,e2} s2={e2,e3}, weights mixed.
    let inst =
        SetCoverInstance::new(4, &[vec![0, 1], vec![1, 2], vec![2, 3]], vec![4, 9, 2]).unwrap();
    check_sc::<BigRat>(&inst);
    check_sc::<Rat128>(&inst);
}

#[test]
fn schedule_formula_and_growth() {
    // total = (D+1)(15(D+1) + 2 + 2 T_cv) + 2 with D = (k-1)f.
    for (f, k, w) in [(1usize, 1usize, 1u64), (2, 2, 10), (3, 4, 1 << 16), (2, 5, u64::MAX)] {
        let cfg = ScConfig::new(f, k, w);
        let d = (k - 1) * f;
        assert_eq!(cfg.d, d);
        let per = 15 * (d as u64 + 1) + 2 + 2 * cfg.cv_steps as u64;
        assert_eq!(cfg.total_rounds(), (d as u64 + 1) * per + 2);
        // log* term stays tiny even for astronomically large χ.
        assert!(cfg.cv_steps <= 7);
    }
    // O(f²k²) shape: doubling k roughly quadruples rounds for fixed f.
    let r2 = ScConfig::new(2, 2, 100).total_rounds();
    let r4 = ScConfig::new(2, 4, 100).total_rounds();
    assert!(r4 > 3 * r2 && r4 < 16 * r2, "r2={r2} r4={r4}");
}

#[test]
fn random_bounded_instances() {
    for seed in 0..4u64 {
        let inst = setcover::random_bounded(12, 8, 2, 4, WeightSpec::Uniform(20), seed);
        check_sc::<BigRat>(&inst);
    }
}

#[test]
fn grid_coverage_instance() {
    let inst = setcover::grid_coverage(6, 6, 3, 2, WeightSpec::Uniform(8), 5);
    check_sc::<BigRat>(&inst);
}

#[test]
fn fig3_symmetric_kpp_forces_ratio_p() {
    // §6 / Fig. 3: on the symmetric K_{p,p}, any deterministic PN algorithm
    // outputs all p subsets (OPT = 1) — our broadcast algorithm included.
    for p in 1..=4usize {
        let inst = setcover::symmetric_kpp(p, 1);
        let run = run_fractional_packing::<BigRat>(&inst).unwrap();
        assert_eq!(run.cover, vec![true; p], "p = {p}: all subsets saturated");
        check_sc::<BigRat>(&inst);
        // The trivial algorithm fares no better (it picks min-weight = all
        // tie-broken... one per element, but by symmetry that is port 0 of
        // each element — still p distinct subsets? No: each element picks its
        // own port-0 subset (m + 0) mod p = m — p distinct subsets again.
        let triv = run_trivial(&inst).unwrap();
        assert_eq!(triv.cover.iter().filter(|&&b| b).count(), p);
    }
}

#[test]
fn trivial_k_approx_on_reduction_instance() {
    // Fig. 4 instance: trivial algorithm covers; bound w(C) ≤ Σ_u min w.
    let inst = reduction::cycle_cover_instance(12, 3);
    let run = run_trivial(&inst).unwrap();
    assert!(inst.is_cover(&run.cover));
    let (w, bound) = trivial_bound::<BigRat>(&inst, &run.cover);
    assert!(w <= bound);
    // §4 on the same instance: f-approx with f = p = 3.
    check_sc::<BigRat>(&inst);
}

#[test]
fn weighted_kpp_breaks_symmetry() {
    // Distinct weights break the symmetry: the cheapest subset should
    // saturate and the ratio improves over p.
    let inst = SetCoverInstance::with_ports(
        &[vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]],
        &[vec![0, 2, 1], vec![1, 0, 2], vec![2, 1, 0]],
        vec![1, 50, 50],
    )
    .unwrap();
    let run = run_fractional_packing::<BigRat>(&inst).unwrap();
    assert!(run.cover[0], "cheap subset must saturate");
    check_sc::<BigRat>(&inst);
}

#[test]
fn rat128_matches_bigrat_sc() {
    for seed in 0..3u64 {
        let inst = setcover::random_bounded(8, 6, 2, 3, WeightSpec::Uniform(12), seed);
        let a = run_fractional_packing::<BigRat>(&inst).unwrap();
        let b = run_fractional_packing::<Rat128>(&inst).unwrap();
        assert_eq!(a.cover, b.cover, "seed {seed}");
        for (u, (ya, yb)) in a.packing.y.iter().zip(&b.packing.y).enumerate() {
            assert_eq!(ya.numer().to_i128(), Some(yb.numer()), "element {u}");
            assert_eq!(ya.denom().to_u128(), Some(yb.denom() as u128));
        }
    }
}

#[test]
fn explicit_bounds_with_slack() {
    let inst = setcover::random_bounded(10, 6, 2, 3, WeightSpec::Uniform(9), 3);
    let run = run_fractional_packing_with::<BigRat>(&inst, 3, 5, 100, 1).unwrap();
    assert!(run.packing.is_maximal(&inst));
    assert_eq!(run.trace.rounds, ScConfig::new(3, 5, 100).total_rounds());
}

#[test]
fn parallel_matches_sequential_sc() {
    let inst = setcover::random_bounded(20, 12, 2, 4, WeightSpec::Uniform(16), 9);
    let seq = run_fractional_packing_with::<BigRat>(&inst, 2, 4, 16, 1).unwrap();
    let par = run_fractional_packing_with::<BigRat>(&inst, 2, 4, 16, 4).unwrap();
    assert_eq!(seq.cover, par.cover);
    assert_eq!(seq.packing, par.packing);
    assert_eq!(seq.trace, par.trace);
}

// ---------------------------------------------------------------------------
// §5: broadcast-model vertex cover via simulation
// ---------------------------------------------------------------------------

#[test]
fn vc_broadcast_equals_sc_on_incidence() {
    // The §5 simulation must produce exactly the cover that §4 produces when
    // run directly on the incidence instance H(G).
    for (g, seed) in [
        (family::path(6), 1u64),
        (family::cycle(7), 2),
        (family::petersen(), 3),
        (family::grid(3, 3), 4),
        (family::star(4), 5),
    ] {
        let w = WeightSpec::Uniform(9).draw_many(g.n(), seed);
        let sim = run_vc_broadcast::<BigRat>(&g, &w).unwrap();
        assert!(sim.all_saturated, "every element must end saturated");

        let inst = incidence_instance(&g, &w);
        let delta = g.max_degree().max(1);
        let wmax = w.iter().copied().max().unwrap();
        let direct = run_fractional_packing_with::<BigRat>(&inst, 2, delta, wmax, 1).unwrap();
        assert_eq!(sim.cover, direct.cover, "seed {seed}");
        assert_eq!(sim.dual_value, direct.packing.dual_value());
        // One extra round on G (history catches up at T+1).
        assert_eq!(sim.trace.rounds, direct.trace.rounds + 1);
    }
}

#[test]
fn vc_broadcast_is_a_2_approx_vertex_cover() {
    for seed in 0..3u64 {
        let g = family::gnp_capped(12, 0.3, 3, seed);
        let w = WeightSpec::Uniform(7).draw_many(g.n(), seed + 50);
        let run = run_vc_broadcast::<BigRat>(&g, &w).unwrap();
        // Valid cover.
        for (_, u, v) in g.edge_iter() {
            assert!(run.cover[u] || run.cover[v]);
        }
        // Certified factor 2 via the dual value.
        let cw: u64 = (0..g.n()).filter(|&v| run.cover[v]).map(|v| w[v]).sum();
        assert!(BigRat::from_u64(cw) <= run.dual_value.mul(&BigRat::from_u64(2)));
    }
}

#[test]
fn vc_broadcast_message_blowup_vs_pn() {
    // §5 trades message size for model weakness: same O(Δ)-ish round regime,
    // but max message bits must be much larger than the §3 PN algorithm's.
    let g = family::cycle(8);
    let w = vec![3u64; 8];
    let pn = run_edge_packing::<BigRat>(&g, &w).unwrap();
    let bc = run_vc_broadcast::<BigRat>(&g, &w).unwrap();
    assert!(
        bc.trace.max_message_bits > 10 * pn.trace.max_message_bits,
        "broadcast sim max msg = {} bits, PN max msg = {} bits",
        bc.trace.max_message_bits,
        pn.trace.max_message_bits
    );
    // And more rounds: O(Δ²) vs O(Δ) regime (here both small, just sanity).
    assert!(bc.trace.rounds > pn.trace.rounds);
}

#[test]
fn vc_broadcast_frucht_symmetry() {
    // §7: on the Frucht graph (3-regular, trivial automorphisms) a
    // broadcast-model algorithm cannot distinguish nodes from the 3-regular
    // tree, so with unit weights the packing must be perfectly symmetric —
    // every node saturated, y ≡ 1/3 — and dual = m/3 = 6.
    let g = family::frucht();
    let w = vec![1u64; 12];
    let run = run_vc_broadcast::<BigRat>(&g, &w).unwrap();
    assert_eq!(run.cover, vec![true; 12], "all nodes in the cover by symmetry");
    assert_eq!(run.dual_value, BigRat::from_u64(6), "Σy = 18 edges × 1/3");
    // The port-numbering §3 algorithm, in contrast, is allowed to break
    // symmetry (the paper notes prior PN algorithms never output y ≡ 1/3).
    let pn = run_edge_packing::<BigRat>(&g, &w).unwrap();
    assert!(pn.packing.is_maximal(&g, &w));
}

#[test]
fn vc_broadcast_schedule() {
    let cfg = VcBcastConfig::new(3, 9);
    assert_eq!(cfg.total_rounds(), ScConfig::new(2, 3, 9).total_rounds() + 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_sc_instances(
        n_elem in 2usize..10,
        n_sub in 2usize..8,
        f in 1usize..3,
        k in 2usize..4,
        wmax in 1u64..50,
        seed in any::<u64>(),
    ) {
        prop_assume!(n_sub * k >= n_elem);
        let inst = setcover::random_bounded(n_elem, n_sub, f, k, WeightSpec::Uniform(wmax), seed);
        check_sc::<BigRat>(&inst);
    }

    #[test]
    fn random_vc_broadcast(
        n in 3usize..9,
        p in 0.2f64..0.6,
        seed in any::<u64>(),
    ) {
        let g = family::gnp_capped(n, p, 3, seed);
        let w = WeightSpec::Uniform(5).draw_many(n, seed ^ 0x99);
        let sim = run_vc_broadcast::<BigRat>(&g, &w).unwrap();
        prop_assert!(sim.all_saturated);
        let inst = incidence_instance(&g, &w);
        if inst.n_elements() > 0 {
            let direct = run_fractional_packing_with::<BigRat>(
                &inst, 2, g.max_degree(), w.iter().copied().max().unwrap(), 1).unwrap();
            prop_assert_eq!(&sim.cover, &direct.cover);
        }
    }
}

//! Canonical byte encoding and stable hashing of problem instances, plus
//! certificate serialization — the substrate of the service layer's wire
//! protocol and result cache.
//!
//! **Canonical** means: the encoding is a pure function of the instance's
//! *semantics* — node count, adjacency lists in port order (adjacency order
//! *is* the port numbering, which the algorithms observe), weights, and the
//! global bounds the anonymous nodes are told. Two instances that the
//! algorithms cannot distinguish encode to byte-identical blobs, so the
//! FNV-1a digest of a blob is a stable cache key:
//!
//! * building a graph from an edge list with endpoint pairs flipped
//!   (`(u, v)` vs `(v, u)`) yields the same adjacency lists, hence the same
//!   bytes;
//! * `encode(decode(encode(x)))` is byte-identical to `encode(x)`
//!   (property-tested);
//! * two different port numberings of the same underlying graph encode
//!   *differently* — deliberately, because port order is observable in the
//!   port-numbering model.
//!
//! Layout (all integers little-endian, no padding): a one-byte tag (`b'V'`
//! for vertex cover, `b'S'` for set cover), then the instance fields; see
//! [`encode_vc`] and [`encode_sc`]. [`encode_certificate`] serialises an
//! exact [`Certificate`] (dual value as sign + little-endian `u64` limbs of
//! numerator and denominator) so a client can re-check `w(C) ≤ factor·Σy`
//! with exact arithmetic at the edge.

use crate::certify::Certificate;
use anonet_bigmath::{BigRat, IBig, PackingValue, Sign, UBig};
use anonet_sim::{Graph, SetCoverInstance};
use std::fmt;

/// 64-bit FNV-1a of `bytes` — a compact, platform-stable digest of a
/// canonical blob for logs and reports. It is **not** a cache key: the
/// service's result cache compares full canonical bytes (a 64-bit digest
/// can collide; full-key comparison cannot serve a wrong result).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors raised when decoding a canonical blob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CanonError {
    /// The blob ended before the announced content.
    Truncated,
    /// Unknown leading tag byte.
    BadTag(u8),
    /// A structural invariant failed (message is human-readable).
    Invalid(String),
}

impl fmt::Display for CanonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanonError::Truncated => write!(f, "blob truncated"),
            CanonError::BadTag(t) => write!(f, "unknown instance tag {t:#04x}"),
            CanonError::Invalid(m) => write!(f, "invalid instance: {m}"),
        }
    }
}

impl std::error::Error for CanonError {}

/// Little-endian byte writer over a growable buffer.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn put_blob(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.put_bytes(v);
    }

    /// Finishes, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian byte reader with truncation checking.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CanonError> {
        if self.remaining() < n {
            return Err(CanonError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CanonError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CanonError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CanonError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CanonError> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed blob.
    pub fn get_blob(&mut self) -> Result<&'a [u8], CanonError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }
}

/// Leading tag of a canonical vertex-cover instance blob.
pub const TAG_VC: u8 = b'V';
/// Leading tag of a canonical set-cover instance blob.
pub const TAG_SC: u8 = b'S';

/// Largest declared degree bound Δ a decoded blob may carry. Declared
/// bounds drive the fixed round schedule (O(Δ) rounds, encoder integers of
/// O(Δ log(WΔ)) bits), so an untrusted blob declaring an absurd Δ on a tiny
/// graph would pin a solver essentially forever. 4096 is far above every
/// experiment in this repository.
pub const MAX_DECLARED_DELTA: usize = 4096;

/// Largest declared frequency/size bounds (f, k) a decoded set-cover blob
/// may carry. The §4 colour scale `(k!)^((D+1)²)` with `D = (k−1)·f` grows
/// so violently in the declared bounds that a malicious `k` alone is a
/// memory/CPU blowup; 64 is far above the paper's regime.
pub const MAX_DECLARED_FK: usize = 64;

/// Largest declared weight bound W a decoded blob may carry. Certification
/// sums cover weights in `u64`, and release builds do not trap overflow: an
/// untrusted blob with weights near `u64::MAX` could wrap `w(C)` and forge a
/// "verifying" certificate. With W ≤ 2³² and node counts bounded by the blob
/// size (≥ 12 bytes per node, frames ≤ 2²⁸ bytes), every weight sum stays
/// below 2⁵⁷. 2³² is far above every experiment in this repository.
pub const MAX_DECLARED_W: u64 = 1 << 32;

/// A decoded vertex-cover instance, owning its graph and weights — what the
/// service layer reconstructs from a canonical blob. `delta`/`max_weight`
/// are the global bounds (Δ, W) the anonymous nodes are told.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedVcInstance {
    /// Communication graph (adjacency order = port numbering).
    pub graph: Graph,
    /// Node weights, indexed by node id.
    pub weights: Vec<u64>,
    /// Maximum degree bound Δ.
    pub delta: usize,
    /// Maximum weight bound W.
    pub max_weight: u64,
}

/// A decoded set-cover instance with its global bounds (f, k, W).
#[derive(Clone, Debug)]
pub struct OwnedScInstance {
    /// The bipartite instance (subsets, then elements; ports preserved).
    pub inst: SetCoverInstance,
    /// Maximum element frequency bound f.
    pub f: usize,
    /// Maximum subset size bound k.
    pub k: usize,
    /// Maximum weight bound W.
    pub max_weight: u64,
}

/// Canonically encodes a vertex-cover instance.
///
/// Layout: `TAG_VC`, `n: u32`, per node `deg: u32` + `deg × u32` neighbour
/// ids in port order, `n × u64` weights, `delta: u32`, `max_weight: u64`.
pub fn encode_vc(g: &Graph, weights: &[u64], delta: usize, max_weight: u64) -> Vec<u8> {
    assert_eq!(weights.len(), g.n(), "one weight per node");
    let mut w = ByteWriter::new();
    w.put_u8(TAG_VC);
    w.put_u32(g.n() as u32);
    for v in 0..g.n() {
        w.put_u32(g.degree(v) as u32);
        for (_, u) in g.neighbors(v) {
            w.put_u32(u as u32);
        }
    }
    for &wt in weights {
        w.put_u64(wt);
    }
    w.put_u32(delta as u32);
    w.put_u64(max_weight);
    w.into_bytes()
}

/// Decodes a canonical vertex-cover blob. Inverse of [`encode_vc`]:
/// `encode_vc` of the decoded instance is byte-identical to the input
/// whenever the input itself was produced by `encode_vc`.
pub fn decode_vc(blob: &[u8]) -> Result<OwnedVcInstance, CanonError> {
    let mut r = ByteReader::new(blob);
    let tag = r.get_u8()?;
    if tag != TAG_VC {
        return Err(CanonError::BadTag(tag));
    }
    let n = r.get_u32()? as usize;
    // Every node costs ≥ 4 (degree word) + 8 (weight) bytes, so an honest
    // blob can never declare more nodes than this — and a malicious count
    // cannot drive `with_capacity` past the blob's own size.
    if n > r.remaining() / 12 {
        return Err(CanonError::Truncated);
    }
    let mut adj = Vec::with_capacity(n);
    for _ in 0..n {
        let deg = r.get_u32()? as usize;
        if deg > r.remaining() / 4 {
            return Err(CanonError::Truncated);
        }
        let mut list = Vec::with_capacity(deg);
        for _ in 0..deg {
            list.push(r.get_u32()? as usize);
        }
        adj.push(list);
    }
    let graph =
        Graph::from_adjacency(adj).map_err(|e| CanonError::Invalid(format!("graph: {e}")))?;
    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        weights.push(r.get_u64()?);
    }
    let delta = r.get_u32()? as usize;
    let max_weight = r.get_u64()?;
    if graph.max_degree() > delta {
        return Err(CanonError::Invalid(format!(
            "max degree {} exceeds bound Δ = {delta}",
            graph.max_degree()
        )));
    }
    if delta > MAX_DECLARED_DELTA {
        return Err(CanonError::Invalid(format!(
            "declared Δ = {delta} exceeds the sanity cap {MAX_DECLARED_DELTA}"
        )));
    }
    if max_weight > MAX_DECLARED_W {
        return Err(CanonError::Invalid(format!(
            "declared W = {max_weight} exceeds the sanity cap {MAX_DECLARED_W}"
        )));
    }
    if max_weight == 0 || weights.iter().any(|&w| w == 0 || w > max_weight) {
        return Err(CanonError::Invalid(format!("weights must lie in 1..=W = {max_weight}")));
    }
    Ok(OwnedVcInstance { graph, weights, delta, max_weight })
}

/// Canonically encodes a set-cover instance.
///
/// Layout: `TAG_SC`, `n_subsets: u32`, `n_elements: u32`, per subset its
/// `deg: u32` and member element indices in port order, per element its
/// `deg: u32` and containing subset indices in port order, `n_subsets × u64`
/// weights, `f: u32`, `k: u32`, `max_weight: u64`. Both sides' port orders
/// are encoded because both are observable in the broadcast model's
/// bipartite communication graph.
pub fn encode_sc(inst: &SetCoverInstance, f: usize, k: usize, max_weight: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_SC);
    w.put_u32(inst.n_subsets as u32);
    w.put_u32(inst.n_elements() as u32);
    for s in 0..inst.n_subsets {
        w.put_u32(inst.graph.degree(s) as u32);
        for (_, u) in inst.graph.neighbors(s) {
            w.put_u32((u - inst.n_subsets) as u32);
        }
    }
    for e in 0..inst.n_elements() {
        let node = inst.element_node(e);
        w.put_u32(inst.graph.degree(node) as u32);
        for (_, s) in inst.graph.neighbors(node) {
            w.put_u32(s as u32);
        }
    }
    for &wt in &inst.weights {
        w.put_u64(wt);
    }
    w.put_u32(f as u32);
    w.put_u32(k as u32);
    w.put_u64(max_weight);
    w.into_bytes()
}

/// Decodes a canonical set-cover blob (inverse of [`encode_sc`]).
pub fn decode_sc(blob: &[u8]) -> Result<OwnedScInstance, CanonError> {
    let mut r = ByteReader::new(blob);
    let tag = r.get_u8()?;
    if tag != TAG_SC {
        return Err(CanonError::BadTag(tag));
    }
    let n_subsets = r.get_u32()? as usize;
    let n_elements = r.get_u32()? as usize;
    // Subsets cost ≥ 4 + 8 bytes each (degree word + weight), elements ≥ 4;
    // reject counts the blob cannot possibly back before allocating.
    if n_subsets > r.remaining() / 12 || n_elements > r.remaining() / 4 {
        return Err(CanonError::Truncated);
    }
    let mut read_lists = |count: usize| -> Result<Vec<Vec<usize>>, CanonError> {
        let mut lists = Vec::with_capacity(count);
        for _ in 0..count {
            let deg = r.get_u32()? as usize;
            if deg > r.remaining() / 4 {
                return Err(CanonError::Truncated);
            }
            let mut list = Vec::with_capacity(deg);
            for _ in 0..deg {
                list.push(r.get_u32()? as usize);
            }
            lists.push(list);
        }
        Ok(lists)
    };
    let subset_ports = read_lists(n_subsets)?;
    let element_ports = read_lists(n_elements)?;
    let mut weights = Vec::with_capacity(n_subsets);
    for _ in 0..n_subsets {
        weights.push(r.get_u64()?);
    }
    let f = r.get_u32()? as usize;
    let k = r.get_u32()? as usize;
    let max_weight = r.get_u64()?;
    let inst = SetCoverInstance::with_ports(&subset_ports, &element_ports, weights)
        .map_err(|e| CanonError::Invalid(format!("instance: {e}")))?;
    if f == 0 || k == 0 || f > MAX_DECLARED_FK || k > MAX_DECLARED_FK {
        return Err(CanonError::Invalid(format!(
            "declared bounds (f = {f}, k = {k}) outside 1..={MAX_DECLARED_FK}"
        )));
    }
    if inst.f() > f || inst.k() > k {
        return Err(CanonError::Invalid(format!(
            "instance (f = {}, k = {}) exceeds bounds (f = {f}, k = {k})",
            inst.f(),
            inst.k()
        )));
    }
    if max_weight > MAX_DECLARED_W {
        return Err(CanonError::Invalid(format!(
            "declared W = {max_weight} exceeds the sanity cap {MAX_DECLARED_W}"
        )));
    }
    if max_weight == 0 || inst.weights.iter().any(|&w| w == 0 || w > max_weight) {
        return Err(CanonError::Invalid(format!("weights must lie in 1..=W = {max_weight}")));
    }
    Ok(OwnedScInstance { inst, f, k, max_weight })
}

fn put_ubig(w: &mut ByteWriter, u: &UBig) {
    w.put_u32(u.limbs().len() as u32);
    for &limb in u.limbs() {
        w.put_u64(limb);
    }
}

fn get_ubig(r: &mut ByteReader<'_>) -> Result<UBig, CanonError> {
    let len = r.get_u32()? as usize;
    if len > r.remaining() / 8 {
        return Err(CanonError::Truncated);
    }
    let mut limbs = Vec::with_capacity(len);
    for _ in 0..len {
        limbs.push(r.get_u64()?);
    }
    Ok(UBig::from_limbs(limbs))
}

/// Serialises an exact [`Certificate`] over [`BigRat`].
///
/// Layout: `cover_weight: u64`, `factor: u64`, dual sign byte (0 plus, 1
/// minus), numerator limb count + limbs, denominator limb count + limbs
/// (little-endian `u64` limbs). Exactness matters: the receiving edge
/// re-checks `cover_weight ≤ factor · dual` with exact rational arithmetic,
/// not floats.
pub fn encode_certificate(cert: &Certificate<BigRat>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(cert.cover_weight);
    w.put_u64(cert.factor);
    w.put_u8(u8::from(cert.dual_value.numer().sign() == Sign::Minus));
    put_ubig(&mut w, cert.dual_value.numer().magnitude());
    put_ubig(&mut w, cert.dual_value.denom());
    w.into_bytes()
}

/// Decodes a serialised certificate (inverse of [`encode_certificate`]).
pub fn decode_certificate(blob: &[u8]) -> Result<Certificate<BigRat>, CanonError> {
    let mut r = ByteReader::new(blob);
    let cover_weight = r.get_u64()?;
    let factor = r.get_u64()?;
    let sign = if r.get_u8()? == 0 { Sign::Plus } else { Sign::Minus };
    let num = get_ubig(&mut r)?;
    let den = get_ubig(&mut r)?;
    if den.is_zero() {
        return Err(CanonError::Invalid("zero dual denominator".into()));
    }
    let dual_value = BigRat::new(IBig::from_sign_mag(sign, num), den);
    Ok(Certificate { cover_weight, dual_value, factor })
}

/// Checks the arithmetic content of a certificate with exact arithmetic:
/// `cover_weight ≤ factor · dual`. This is the edge-side check — it trusts
/// the server's claim that the dual is feasible and maximal (the full
/// verification needs the packing itself, which stays server-side).
pub fn certificate_bound_holds(cert: &Certificate<BigRat>) -> bool {
    let lhs = BigRat::from_u64(cert.cover_weight);
    let rhs = cert.dual_value.mul(&BigRat::from_u64(cert.factor));
    lhs <= rhs
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_gen::{family, setcover, Rng, WeightSpec};

    #[test]
    fn vc_roundtrip_exact() {
        let g = family::petersen();
        let w = WeightSpec::Uniform(9).draw_many(10, 3);
        let blob = encode_vc(&g, &w, 3, 9);
        let dec = decode_vc(&blob).unwrap();
        assert_eq!(dec.graph, g);
        assert_eq!(dec.weights, w);
        assert_eq!(dec.delta, 3);
        assert_eq!(dec.max_weight, 9);
        // encode ∘ decode ∘ encode is the identity on blobs.
        assert_eq!(encode_vc(&dec.graph, &dec.weights, dec.delta, dec.max_weight), blob);
    }

    #[test]
    fn vc_hash_stable_across_equal_canonicalizations() {
        // Flipping the endpoint order of undirected edges does not change
        // the adjacency (port) structure, so the canonical bytes and the
        // digest are identical.
        let n = 12;
        let edges: Vec<(usize, usize)> =
            (0..n).map(|v| (v, (v + 1) % n)).chain((0..n / 2).map(|v| (v, v + n / 2))).collect();
        let flipped: Vec<(usize, usize)> = edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| if i % 2 == 0 { (v, u) } else { (u, v) })
            .collect();
        let g1 = Graph::from_edges(n, &edges).unwrap();
        let g2 = Graph::from_edges(n, &flipped).unwrap();
        let w = vec![1u64; n];
        let b1 = encode_vc(&g1, &w, 3, 1);
        let b2 = encode_vc(&g2, &w, 3, 1);
        assert_eq!(b1, b2);
        assert_eq!(fnv64(&b1), fnv64(&b2));
        // Re-deriving the graph from its own adjacency is also stable.
        let g3 = Graph::from_adjacency(g1.adjacency()).unwrap();
        assert_eq!(encode_vc(&g3, &w, 3, 1), b1);
    }

    #[test]
    fn vc_port_order_is_observable_and_hashed() {
        // A *different* port numbering of the same graph is a different
        // instance in the PN model and must hash differently.
        let g = family::cycle(8);
        let r = g.reorder_ports(|_, old| old.iter().rev().copied().collect());
        let w = vec![1u64; 8];
        assert_ne!(encode_vc(&g, &w, 2, 1), encode_vc(&r, &w, 2, 1));
    }

    #[test]
    fn vc_decode_rejects_bad_blobs() {
        let g = family::star(3);
        let w = vec![2u64; 4];
        let blob = encode_vc(&g, &w, 3, 2);
        assert_eq!(decode_vc(&blob[..blob.len() - 1]).unwrap_err(), CanonError::Truncated);
        assert_eq!(decode_vc(b"X").unwrap_err(), CanonError::BadTag(b'X'));
        // Degree bound violation.
        let tight = encode_vc(&g, &w, 2, 2);
        assert!(matches!(decode_vc(&tight).unwrap_err(), CanonError::Invalid(_)));
        // Weight above W.
        let heavy = encode_vc(&g, &[2, 2, 2, 3], 3, 2);
        assert!(matches!(decode_vc(&heavy).unwrap_err(), CanonError::Invalid(_)));
        // Absurd degree claim must not OOM.
        let mut w2 = ByteWriter::new();
        w2.put_u8(TAG_VC);
        w2.put_u32(1);
        w2.put_u32(u32::MAX);
        assert_eq!(decode_vc(&w2.into_bytes()).unwrap_err(), CanonError::Truncated);
        // Absurd *node-count* claim in a tiny blob must not allocate either.
        let mut w3 = ByteWriter::new();
        w3.put_u8(TAG_VC);
        w3.put_u32(u32::MAX);
        assert_eq!(decode_vc(&w3.into_bytes()).unwrap_err(), CanonError::Truncated);
        // Declared Δ beyond the sanity cap is rejected (it would pin a
        // solver in an O(Δ)-round schedule).
        let absurd = encode_vc(&g, &w, MAX_DECLARED_DELTA + 1, 2);
        assert!(matches!(decode_vc(&absurd).unwrap_err(), CanonError::Invalid(_)));
        // Declared W beyond the sanity cap is rejected: weights near
        // u64::MAX could wrap the u64 cover-weight sums certification
        // relies on and forge a "verifying" certificate in release builds.
        let heavy_w = encode_vc(&g, &w, 3, MAX_DECLARED_W + 1);
        assert!(matches!(decode_vc(&heavy_w).unwrap_err(), CanonError::Invalid(_)));
        let wrapping = encode_vc(&g, &[1 << 63; 4], 3, u64::MAX);
        assert!(matches!(decode_vc(&wrapping).unwrap_err(), CanonError::Invalid(_)));
    }

    #[test]
    fn sc_decode_rejects_hostile_bounds_and_counts() {
        // Absurd subset/element counts in a tiny blob: no allocation.
        for (subs, elems) in [(u32::MAX, 0u32), (0, u32::MAX), (u32::MAX, u32::MAX)] {
            let mut w = ByteWriter::new();
            w.put_u8(TAG_SC);
            w.put_u32(subs);
            w.put_u32(elems);
            assert_eq!(decode_sc(&w.into_bytes()).unwrap_err(), CanonError::Truncated);
        }
        // Declared f = 0 / k = 0 would panic ScConfig downstream; declared
        // bounds beyond the cap would blow up the (k!)^((D+1)²) scale.
        let inst = setcover::random_bounded(6, 4, 2, 3, WeightSpec::Unit, 1);
        for (f, k) in [(0, 3), (2, 0), (MAX_DECLARED_FK + 1, 3), (2, MAX_DECLARED_FK + 1)] {
            let blob = encode_sc(&inst, f, k, 1);
            assert!(matches!(decode_sc(&blob).unwrap_err(), CanonError::Invalid(_)), "f={f} k={k}");
        }
        // A zero subset weight would panic `ScNode::init` downstream; the
        // decode must reject it like `decode_vc` does (weights lie in 1..=W).
        let mut zeroed = encode_sc(&inst, inst.f(), inst.k(), 1);
        let w0 = zeroed.len() - 16 - 8 * inst.n_subsets;
        zeroed[w0..w0 + 8].fill(0);
        assert!(matches!(decode_sc(&zeroed).unwrap_err(), CanonError::Invalid(_)));
        // Declared W beyond the sanity cap is rejected (overflow hardening,
        // as in `decode_vc`).
        let heavy_w = encode_sc(&inst, inst.f(), inst.k(), MAX_DECLARED_W + 1);
        assert!(matches!(decode_sc(&heavy_w).unwrap_err(), CanonError::Invalid(_)));
    }

    #[test]
    fn sc_roundtrip_exact() {
        let inst = setcover::random_bounded(12, 8, 3, 4, WeightSpec::Uniform(7), 5);
        let (f, k, w) = (inst.f(), inst.k(), inst.max_weight());
        let blob = encode_sc(&inst, f, k, w);
        let dec = decode_sc(&blob).unwrap();
        assert_eq!(dec.inst.graph, inst.graph);
        assert_eq!(dec.inst.n_subsets, inst.n_subsets);
        assert_eq!(dec.inst.weights, inst.weights);
        assert_eq!(encode_sc(&dec.inst, dec.f, dec.k, dec.max_weight), blob);
    }

    #[test]
    fn roundtrip_stability_property() {
        // Random bounded-degree graphs with random weights: encode → decode
        // → encode is byte-identical, the digest is stable, and decoding
        // reconstructs the exact graph (ports included).
        let mut rng = Rng::new(99);
        for case in 0..24u64 {
            let n = 4 + rng.index(24);
            let g = family::gnp_capped(n, 0.25, 5, case);
            let w = WeightSpec::LogUniform(1 << 12).draw_many(n, case);
            let delta = g.max_degree().max(1);
            let blob = encode_vc(&g, &w, delta, 1 << 12);
            let dec = decode_vc(&blob).unwrap();
            assert_eq!(dec.graph, g, "case {case}");
            let blob2 = encode_vc(&dec.graph, &dec.weights, dec.delta, dec.max_weight);
            assert_eq!(blob, blob2, "case {case}");
            assert_eq!(fnv64(&blob), fnv64(&blob2), "case {case}");
        }
    }

    #[test]
    fn certificate_roundtrip_and_bound() {
        let cert = Certificate {
            cover_weight: 41,
            dual_value: BigRat::from_frac(123_456_789, 6_000_000),
            factor: 2,
        };
        let blob = encode_certificate(&cert);
        let dec = decode_certificate(&blob).unwrap();
        assert_eq!(dec.cover_weight, cert.cover_weight);
        assert_eq!(dec.factor, cert.factor);
        assert_eq!(dec.dual_value, cert.dual_value);
        assert!(certificate_bound_holds(&dec)); // 41 ≤ 2 · 20.57…
        let bad = Certificate { cover_weight: 42, dual_value: BigRat::from_u64(20), factor: 2 };
        assert!(!certificate_bound_holds(&bad));
        // A dual too large to fit u64 arithmetic still round-trips exactly.
        let huge = Certificate {
            cover_weight: u64::MAX,
            dual_value: BigRat::new(
                IBig::from_sign_mag(Sign::Plus, UBig::from_u64(7).pow(100)),
                UBig::from_u64(3).pow(60),
            ),
            factor: 2,
        };
        let dec = decode_certificate(&encode_certificate(&huge)).unwrap();
        assert_eq!(dec.dual_value, huge.dual_value);
    }

    #[test]
    fn fnv64_known_values() {
        // Pin the digest so accidental changes to the hash break loudly —
        // cached results are keyed by it.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }
}

//! The folklore **k-approximation** for set cover (§2, §6): each element
//! joins an adjacent subset of minimum weight; all chosen subsets form the
//! cover. Two rounds in the port-numbering model (ties broken by smallest
//! port — which is why this one needs ports while §4 does not).
//!
//! Together with §4's f-approximation this realises the paper's
//! `p = min{f, k}` upper bound, which §6 proves optimal for deterministic
//! port-numbering (and even strictly local unique-identifier) algorithms.

use anonet_bigmath::PackingValue;
use anonet_sim::{run_pn, MessageSize, PnAlgorithm, SetCoverInstance, SimError, Trace};

/// Messages: subset weights downstream, element choices upstream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum TrivialMsg {
    /// No content.
    #[default]
    Nil,
    /// Subset → element: my weight.
    Weight(u64),
    /// Element → subset: "I choose you".
    Choose,
}

impl MessageSize for TrivialMsg {
    fn approx_bits(&self) -> u64 {
        match self {
            TrivialMsg::Nil | TrivialMsg::Choose => 1,
            TrivialMsg::Weight(_) => 64,
        }
    }
}

/// Node state for the trivial algorithm.
#[derive(Clone, Debug)]
pub enum TrivialNode {
    /// Subset node: weight and whether anyone chose it.
    Subset {
        /// The subset weight.
        weight: u64,
        /// Set when some element chooses this subset.
        chosen: bool,
    },
    /// Element node: the port of the chosen subset.
    Element {
        /// Port of the minimum-weight neighbour (min port on ties).
        pick: Option<usize>,
    },
}

/// Output: cover membership for subsets; the chosen port for elements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrivialOutput {
    /// Subset node result.
    Subset {
        /// Whether the subset is in the cover.
        in_cover: bool,
    },
    /// Element node result.
    Element {
        /// The port of the subset this element chose.
        chosen_port: usize,
    },
}

/// Marker for the config (none needed beyond the model).
pub struct TrivialConfig;

impl PnAlgorithm for TrivialNode {
    type Msg = TrivialMsg;
    type Input = Option<u64>;
    type Output = TrivialOutput;
    type Config = TrivialConfig;

    fn init(_cfg: &TrivialConfig, _degree: usize, input: &Option<u64>) -> Self {
        match input {
            Some(w) => TrivialNode::Subset { weight: *w, chosen: false },
            None => TrivialNode::Element { pick: None },
        }
    }

    fn send(&self, _cfg: &TrivialConfig, round: u64, out: &mut [TrivialMsg]) {
        match (self, round) {
            (TrivialNode::Subset { weight, .. }, 1) => {
                for m in out.iter_mut() {
                    *m = TrivialMsg::Weight(*weight);
                }
            }
            (TrivialNode::Element { pick: Some(p) }, 2) => {
                out[*p] = TrivialMsg::Choose;
            }
            _ => {}
        }
    }

    fn receive(
        &mut self,
        _cfg: &TrivialConfig,
        round: u64,
        incoming: &[&TrivialMsg],
    ) -> Option<TrivialOutput> {
        match (&mut *self, round) {
            (TrivialNode::Element { pick }, 1) => {
                // Min weight, ties by min port (iteration order).
                let mut best: Option<(u64, usize)> = None;
                for (p, m) in incoming.iter().enumerate() {
                    if let TrivialMsg::Weight(w) = m {
                        if best.is_none() || *w < best.unwrap().0 {
                            best = Some((*w, p));
                        }
                    }
                }
                *pick = best.map(|(_, p)| p);
                None
            }
            (TrivialNode::Subset { chosen, .. }, 2) => {
                *chosen = incoming.iter().any(|m| matches!(m, TrivialMsg::Choose));
                Some(TrivialOutput::Subset { in_cover: *chosen })
            }
            (TrivialNode::Element { pick }, 2) => {
                Some(TrivialOutput::Element { chosen_port: pick.unwrap_or(0) })
            }
            _ => None,
        }
    }
}

/// Result of the trivial algorithm.
#[derive(Clone, Debug)]
pub struct TrivialRun {
    /// Cover membership by subset index.
    pub cover: Vec<bool>,
    /// Engine instrumentation (always 2 rounds).
    pub trace: Trace,
}

/// Runs the trivial k-approximation on a set-cover instance.
pub fn run_trivial(inst: &SetCoverInstance) -> Result<TrivialRun, SimError> {
    let inputs: Vec<Option<u64>> =
        (0..inst.graph.n()).map(|v| inst.is_subset(v).then(|| inst.weights[v])).collect();
    let res = run_pn::<TrivialNode>(&inst.graph, &TrivialConfig, &inputs, 2)?;
    let cover = (0..inst.n_subsets)
        .map(|s| matches!(res.outputs[s], TrivialOutput::Subset { in_cover: true }))
        .collect();
    Ok(TrivialRun { cover, trace: res.trace })
}

/// The k-approximation bound certificate: `w(C) ≤ k · OPT` holds because
/// every chosen subset is charged to an element whose cheapest neighbour it
/// is. This helper verifies the *weaker, instance-checkable* statement
/// `w(C) ≤ Σ_u min_{s ∋ u} w_s` used in the experiments.
pub fn trivial_bound<V: PackingValue>(inst: &SetCoverInstance, cover: &[bool]) -> (V, V) {
    let cover_weight = V::from_u64(inst.cover_weight(cover));
    let mut bound = V::zero();
    for u in 0..inst.n_elements() {
        let min_w = inst.containing(u).map(|s| inst.weights[s]).min().expect("coverable");
        bound = bound.add(&V::from_u64(min_w));
    }
    (cover_weight, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_bigmath::BigRat;

    fn inst() -> SetCoverInstance {
        // s0 = {e0, e1} w=5, s1 = {e1, e2} w=2, s2 = {e2} w=9.
        SetCoverInstance::new(3, &[vec![0, 1], vec![1, 2], vec![2]], vec![5, 2, 9]).unwrap()
    }

    #[test]
    fn picks_min_weight_neighbours() {
        let i = inst();
        let run = run_trivial(&i).unwrap();
        // e0 must pick s0 (only option); e1 picks s1 (2 < 5); e2 picks s1.
        assert_eq!(run.cover, vec![true, true, false]);
        assert!(i.is_cover(&run.cover));
        assert_eq!(run.trace.rounds, 2);
    }

    #[test]
    fn bound_holds() {
        let i = inst();
        let run = run_trivial(&i).unwrap();
        let (w, bound) = trivial_bound::<BigRat>(&i, &run.cover);
        assert!(w <= bound, "w(C) = {w} > Σ min = {bound}");
    }

    #[test]
    fn ties_broken_by_port() {
        // Element 0 sees two subsets of equal weight; picks port 0's subset.
        let i = SetCoverInstance::new(1, &[vec![0], vec![0]], vec![3, 3]).unwrap();
        let run = run_trivial(&i).unwrap();
        assert_eq!(run.cover, vec![true, false]);
    }

    #[test]
    fn covers_always() {
        let i = anonet_gen_like_instance();
        let run = run_trivial(&i).unwrap();
        assert!(i.is_cover(&run.cover));
    }

    fn anonet_gen_like_instance() -> SetCoverInstance {
        // Deterministic small instance exercising shared elements.
        SetCoverInstance::new(
            6,
            &[vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 5], vec![1, 4]],
            vec![7, 1, 4, 2, 2],
        )
        .unwrap()
    }
}

//! §3: maximal edge packing — and hence 2-approximate minimum-weight vertex
//! cover — in **O(Δ + log\*W)** rounds in the port-numbering model.
//!
//! The node program follows the paper exactly, organised as a fixed round
//! schedule computable from the global parameters (Δ, W) alone (anonymous
//! nodes cannot detect global termination, so *every* phase has a
//! pre-agreed length):
//!
//! | rounds                | phase                                         |
//! |-----------------------|-----------------------------------------------|
//! | `2Δ`                  | Phase I: Δ iterations of steps (i)–(iii), each = 1 status round + 1 offer round |
//! | `1`                   | final residual-status exchange                |
//! | `1`                   | forest assignment (ports → F₁…F_Δ)            |
//! | `T_cv = O(log*χ)`     | Cole–Vishkin on each forest in parallel       |
//! | `6`                   | 3 × (shift-down + eliminate) : 6 → 3 colours  |
//! | `6Δ`                  | star saturation for each (forest, colour)     |
//!
//! Phase I maintains, per port, the *lexicographic comparison so far* between
//! the two endpoints' colour sequences (the sequences grow by one rational
//! per iteration; once a position differs the comparison is fixed forever),
//! so full sequences never travel on the wire. Phase II encodes the local
//! sequence into the Lemma 2 integer and 3-colours each forest.

use crate::encode::{cv_step, cv_step_root, CvSchedule, SeqEncoder};
use crate::packing::EdgePacking;
use anonet_bigmath::{PackingValue, UBig};
use anonet_sim::{
    run_pn_many, run_pn_threads, Graph, MessageSize, PnAlgorithm, PnJob, RunResult, SimError, Trace,
};
use std::cmp::Ordering;

/// Global configuration: the paper's Δ and W, plus quantities every node
/// derives from them (the Lemma 2 encoder and the Cole–Vishkin schedule).
#[derive(Clone, Debug)]
pub struct VcConfig {
    /// Maximum degree bound Δ (≥ actual max degree).
    pub delta: usize,
    /// Maximum weight bound W (≥ every node weight, ≥ 1).
    pub max_weight: u64,
    /// The Phase I sequence encoder (scale `(Δ!)^Δ`, base `W(Δ!)^Δ + 1`).
    pub encoder: SeqEncoder,
    /// Rounds of Cole–Vishkin needed to reach 6 colours from χ.
    pub cv_steps: u32,
}

impl VcConfig {
    /// Builds the configuration for bounds Δ and W.
    pub fn new(delta: usize, max_weight: u64) -> VcConfig {
        assert!(max_weight >= 1, "W must be at least 1");
        let encoder = SeqEncoder::phase1(delta, max_weight);
        let cv_steps = CvSchedule::for_bound(&encoder.code_bound()).steps;
        VcConfig { delta, max_weight, encoder, cv_steps }
    }

    /// End of Phase I (after Δ two-round iterations).
    fn phase1_end(&self) -> u64 {
        2 * self.delta as u64
    }
    /// The final status-exchange round.
    fn status2_round(&self) -> u64 {
        self.phase1_end() + 1
    }
    /// The forest-assignment round.
    fn forest_round(&self) -> u64 {
        self.phase1_end() + 2
    }
    /// Last Cole–Vishkin round.
    fn cv_end(&self) -> u64 {
        self.forest_round() + self.cv_steps as u64
    }
    /// First of the six shift-down/eliminate rounds.
    fn shift_start(&self) -> u64 {
        self.cv_end() + 1
    }
    /// First star round.
    fn stars_start(&self) -> u64 {
        self.shift_start() + 6
    }
    /// Total schedule length: `8Δ + T_cv + 8` rounds — the Theorem 1 bound
    /// O(Δ + log*W) with explicit constants.
    pub fn total_rounds(&self) -> u64 {
        self.stars_start() - 1 + 6 * self.delta as u64
    }

    /// Which phase a (1-based) round belongs to.
    fn phase(&self, round: u64) -> Phase {
        if round <= self.phase1_end() {
            let it = (round - 1) / 2;
            if round % 2 == 1 {
                Phase::P1Status { iter: it }
            } else {
                Phase::P1Offer { iter: it }
            }
        } else if round == self.status2_round() {
            Phase::Status2
        } else if round == self.forest_round() {
            Phase::Forest
        } else if round <= self.cv_end() {
            Phase::Cv
        } else if round < self.stars_start() {
            let rel = (round - self.shift_start()) as usize; // 0..6
            let colour = 5 - (rel / 2) as u64; // eliminate 5, then 4, then 3
            if rel % 2 == 0 {
                Phase::ShiftDown
            } else {
                Phase::Eliminate { colour }
            }
        } else {
            let rel = round - self.stars_start(); // 0 .. 6Δ
            let pair = (rel / 2) as usize;
            let star = StarId { forest: pair / 3, colour: (pair % 3) as u64 };
            if rel % 2 == 0 {
                Phase::StarResid(star)
            } else {
                Phase::StarGrant(star)
            }
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct StarId {
    forest: usize,
    colour: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    P1Status { iter: u64 },
    P1Offer { iter: u64 },
    Status2,
    Forest,
    Cv,
    ShiftDown,
    Eliminate { colour: u64 },
    StarResid(StarId),
    StarGrant(StarId),
}

/// Wire messages of the edge-packing algorithm.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum VcMsg<V> {
    /// No content (also what halted nodes emit).
    #[default]
    Nil,
    /// "My residual is positive" (Phase I status and the final status round).
    Status(bool),
    /// Phase I offer `x(v)`; `None` when the sender is not in `V_yc`.
    Offer(Option<V>),
    /// "This edge is my r-th outgoing edge" (forest index), or `None`.
    Forest(Option<u16>),
    /// Per-forest Cole–Vishkin colours (`None` for forests the sender is not in).
    Colours(Vec<Option<UBig>>),
    /// Star phase: a leaf's residual, sent to its parent.
    Resid(V),
    /// Star phase: the root's granted increment for this edge.
    Grant(V),
}

impl<V: PackingValue> MessageSize for VcMsg<V> {
    fn approx_bits(&self) -> u64 {
        match self {
            VcMsg::Nil => 0,
            VcMsg::Status(_) => 1,
            VcMsg::Offer(x) => 1 + x.as_ref().map_or(0, |v| v.wire_bits()),
            VcMsg::Forest(f) => 1 + if f.is_some() { 16 } else { 0 },
            VcMsg::Colours(cs) => {
                cs.iter().map(|c| 1 + c.as_ref().map_or(0, |u| u.bits().max(1))).sum()
            }
            VcMsg::Resid(v) | VcMsg::Grant(v) => v.wire_bits(),
        }
    }
}

/// Per-node state of the §3 algorithm.
#[derive(Clone, Debug)]
pub struct EdgePackingNode<V> {
    deg: usize,
    /// Residual weight `r_y(v)`.
    r: V,
    /// `y(e)` per port (the node's copy of each incident edge's value).
    y: Vec<V>,
    /// Own colour sequence (grows to length Δ during Phase I).
    seq: Vec<V>,
    /// Per-port lexicographic comparison own-sequence vs neighbour-sequence,
    /// fixed at the first differing position.
    ord: Vec<Ordering>,
    /// Per-port neighbour active status from the latest status round.
    nb_active: Vec<bool>,
    /// Own offer `x(v)` for the current Phase I iteration (None ⇔ v ∉ V_yc).
    my_x: Option<V>,
    /// Per-port: edge currently in `E_yc`.
    in_eyc: Vec<bool>,
    /// Per-port: edge in the unsaturated set A (Phase II).
    in_a: Vec<bool>,
    /// Per-port: forest index if this is one of my outgoing edges.
    forest_of_port: Vec<Option<u16>>,
    /// Per-forest: my outgoing (parent) port.
    parent_port: Vec<Option<usize>>,
    /// Per-forest: ports with incoming forest edges (my children).
    children: Vec<Vec<usize>>,
    /// Per-forest: my current Cole–Vishkin colour (None ⇔ not in the forest).
    colours: Vec<Option<UBig>>,
    /// Per-port: grant to emit in the next star round (root role).
    pending_grants: Vec<Option<V>>,
    /// Port on which I await a grant (leaf role).
    await_grant: Option<usize>,
}

impl<V: PackingValue> EdgePackingNode<V> {
    fn active(&self) -> bool {
        self.r.is_positive()
    }

    fn my_colour_small(&self, i: usize) -> u64 {
        // Clamped total decoding: in fault-free runs colours are ≤ 5 at every
        // call site; corrupted states are clamped into the palette.
        self.colours[i].as_ref().and_then(UBig::to_u64).unwrap_or(0).min(5)
    }

    fn set_colour_small(&mut self, i: usize, c: u64) {
        self.colours[i] = Some(UBig::from_u64(c));
    }
}

/// Final per-node output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VcOutput<V> {
    /// Cover membership: `true` iff the node is saturated.
    pub in_cover: bool,
    /// Final `y(e)` per port.
    pub y: Vec<V>,
}

impl<V: PackingValue> PnAlgorithm for EdgePackingNode<V> {
    type Msg = VcMsg<V>;
    type Input = u64;
    type Output = VcOutput<V>;
    type Config = VcConfig;

    fn init(cfg: &VcConfig, degree: usize, input: &u64) -> Self {
        assert!(degree <= cfg.delta, "degree {degree} exceeds Δ = {}", cfg.delta);
        assert!(
            *input >= 1 && *input <= cfg.max_weight,
            "weight {input} outside 1..=W = {}",
            cfg.max_weight
        );
        EdgePackingNode {
            deg: degree,
            r: V::from_u64(*input),
            y: vec![V::zero(); degree],
            seq: Vec::with_capacity(cfg.delta),
            ord: vec![Ordering::Equal; degree],
            nb_active: vec![true; degree],
            my_x: None,
            in_eyc: vec![false; degree],
            in_a: vec![false; degree],
            forest_of_port: vec![None; degree],
            parent_port: vec![None; cfg.delta],
            children: vec![Vec::new(); cfg.delta],
            colours: vec![None; cfg.delta],
            pending_grants: vec![None; degree],
            await_grant: None,
        }
    }

    fn send(&self, cfg: &VcConfig, round: u64, out: &mut [VcMsg<V>]) {
        match cfg.phase(round) {
            Phase::P1Status { .. } | Phase::Status2 => {
                for m in out.iter_mut() {
                    *m = VcMsg::Status(self.active());
                }
            }
            Phase::P1Offer { .. } => {
                for m in out.iter_mut() {
                    *m = VcMsg::Offer(self.my_x.clone());
                }
            }
            Phase::Forest => {
                for (p, m) in out.iter_mut().enumerate() {
                    *m = VcMsg::Forest(self.forest_of_port[p]);
                }
            }
            Phase::Cv | Phase::ShiftDown | Phase::Eliminate { .. } => {
                for m in out.iter_mut() {
                    *m = VcMsg::Colours(self.colours.clone());
                }
            }
            Phase::StarResid(star) => {
                // Leaf role: if I am a colour-j child in forest i and still
                // unsaturated, send my residual to my parent.
                if let Some(p) = self.parent_port[star.forest] {
                    if self.colours[star.forest].as_ref().and_then(UBig::to_u64)
                        == Some(star.colour)
                        && self.active()
                    {
                        out[p] = VcMsg::Resid(self.r.clone());
                    }
                }
            }
            Phase::StarGrant(_) => {
                for (p, m) in out.iter_mut().enumerate() {
                    if let Some(g) = &self.pending_grants[p] {
                        *m = VcMsg::Grant(g.clone());
                    }
                }
            }
        }
    }

    fn receive(
        &mut self,
        cfg: &VcConfig,
        round: u64,
        incoming: &[&VcMsg<V>],
    ) -> Option<VcOutput<V>> {
        match cfg.phase(round) {
            Phase::P1Status { .. } => {
                for (p, m) in incoming.iter().enumerate() {
                    // Total decoding (self-stabilization contract): anything
                    // other than Status(true) counts as inactive.
                    self.nb_active[p] = matches!(m, VcMsg::Status(true));
                }
                let me_active = self.active();
                let mut degyc = 0usize;
                for p in 0..self.deg {
                    self.in_eyc[p] =
                        me_active && self.nb_active[p] && self.ord[p] == Ordering::Equal;
                    degyc += usize::from(self.in_eyc[p]);
                }
                self.my_x = (degyc > 0).then(|| self.r.div(&V::from_u64(degyc as u64)));
            }
            Phase::P1Offer { .. } => {
                let one = V::one();
                let own_append = self.my_x.clone().unwrap_or_else(|| one.clone());
                for (p, m) in incoming.iter().enumerate() {
                    let xu = match m {
                        VcMsg::Offer(x) => x.clone(),
                        _ => None, // corrupted neighbour: treat as not in V_yc
                    };
                    if self.in_eyc[p] {
                        if let (Some(mine), Some(theirs)) = (self.my_x.as_ref(), xu.as_ref()) {
                            let inc = mine.min(theirs).clone();
                            self.y[p] = self.y[p].add(&inc);
                            self.r = self.r.sub(&inc);
                        }
                    }
                    let their_append = xu.unwrap_or_else(|| one.clone());
                    if self.ord[p] == Ordering::Equal {
                        self.ord[p] = own_append.cmp(&their_append);
                    }
                }
                self.seq.push(own_append);
                self.my_x = None;
            }
            Phase::Status2 => {
                let me_active = self.active();
                let mut rank = 0u16;
                for (p, m) in incoming.iter().enumerate() {
                    let a = matches!(m, VcMsg::Status(true));
                    self.nb_active[p] = a;
                    // Phase I postcondition (Lemma 1): an unsaturated edge is
                    // multicoloured — so ord != Equal whenever both ends are
                    // active. Under fault injection the invariant can break
                    // transiently; requiring it here (rather than asserting)
                    // keeps the program total.
                    self.in_a[p] = me_active && a && self.ord[p] != Ordering::Equal;
                    if self.in_a[p] && self.ord[p] == Ordering::Less {
                        // My colour is lower: the edge is oriented away from
                        // me; it becomes my rank-th outgoing edge → forest.
                        self.forest_of_port[p] = Some(rank);
                        self.parent_port[rank as usize] = Some(p);
                        rank += 1;
                    }
                }
            }
            Phase::Forest => {
                for (p, m) in incoming.iter().enumerate() {
                    if let VcMsg::Forest(Some(i)) = m {
                        if (*i as usize) < cfg.delta {
                            self.children[*i as usize].push(p);
                        }
                    }
                }
                // Initialise Cole–Vishkin colours: the Lemma 2 code of my
                // Phase I sequence, in every forest I participate in. A
                // corrupted sequence falls back to a fixed valid code.
                let code = cfg
                    .encoder
                    .try_encode(&self.seq)
                    .unwrap_or_else(|| cfg.encoder.fallback_code::<V>());
                for i in 0..cfg.delta {
                    if self.parent_port[i].is_some() || !self.children[i].is_empty() {
                        self.colours[i] = Some(code.clone());
                    }
                }
            }
            Phase::Cv => {
                for i in 0..cfg.delta {
                    if self.colours[i].is_none() {
                        continue;
                    }
                    let own = self.colours[i].as_ref().unwrap();
                    let parent = self.parent_port[i].and_then(|p| match incoming[p] {
                        VcMsg::Colours(cs) => cs.get(i).cloned().flatten(),
                        _ => None,
                    });
                    let new = match parent {
                        // A corrupted parent may echo our own colour; the
                        // root rule is a safe total fallback.
                        Some(pc) if pc != *own => cv_step(own, &pc),
                        _ if self.parent_port[i].is_none() => cv_step_root(own),
                        _ => cv_step_root(own),
                    };
                    self.colours[i] = Some(new);
                }
            }
            Phase::ShiftDown => {
                for i in 0..cfg.delta {
                    if self.colours[i].is_none() {
                        continue;
                    }
                    match self.parent_port[i] {
                        Some(p) => {
                            let pc = match incoming[p] {
                                VcMsg::Colours(cs) => cs.get(i).cloned().flatten(),
                                _ => None,
                            };
                            // Clamp to the 6-colour palette (totality).
                            let c = pc.and_then(|u| u.to_u64()).unwrap_or(0).min(5);
                            self.set_colour_small(i, c);
                        }
                        None => {
                            // Root: pick the smallest colour in {0,1,2}
                            // different from my current one (children adopt my
                            // current one).
                            let cur = self.my_colour_small(i);
                            let new = (0..3).find(|&c| c != cur).unwrap();
                            self.set_colour_small(i, new);
                        }
                    }
                }
            }
            Phase::Eliminate { colour } => {
                for i in 0..cfg.delta {
                    if self.colours[i].is_none() || self.my_colour_small(i) != colour {
                        continue;
                    }
                    let mut forbidden = [false; 6];
                    let mut forbid = |m: &VcMsg<V>| {
                        if let VcMsg::Colours(cs) = m {
                            if let Some(Some(c)) = cs.get(i) {
                                if let Some(c) = c.to_u64() {
                                    forbidden[(c.min(5)) as usize] = true;
                                }
                            }
                        }
                    };
                    if let Some(p) = self.parent_port[i] {
                        forbid(incoming[p]);
                    }
                    for &p in &self.children[i] {
                        forbid(incoming[p]);
                    }
                    // In a fault-free run, the shift-down guarantees parent +
                    // monochromatic children forbid ≤ 2 colours; under faults
                    // fall back to 0 (totality).
                    let new = (0u64..3).find(|&c| !forbidden[c as usize]).unwrap_or(0);
                    self.set_colour_small(i, new);
                }
            }
            Phase::StarResid(star) => {
                // Leaf: remember where I expect a grant.
                self.await_grant = self.parent_port[star.forest].filter(|_| {
                    self.colours[star.forest].as_ref().and_then(UBig::to_u64) == Some(star.colour)
                        && self.active()
                });
                // Root: gather residuals and compute grants now (send() is
                // immutable, so the decision is made here).
                let mut leaves: Vec<(usize, V)> = Vec::new();
                for (p, m) in incoming.iter().enumerate() {
                    if let VcMsg::Resid(ru) = m {
                        leaves.push((p, (*ru).clone()));
                    }
                }
                if leaves.is_empty() {
                    return None;
                }
                if !self.active() {
                    // I am saturated: all these edges are already saturated.
                    for (p, _) in leaves {
                        self.pending_grants[p] = Some(V::zero());
                    }
                    return None;
                }
                // Corrupted leaves may report non-positive residuals; drop
                // them (fault-free leaves always send positive values).
                leaves.retain(|(_, r)| r.is_positive());
                if leaves.is_empty() {
                    return None;
                }
                let total = anonet_bigmath::value::sum(leaves.iter().map(|(_, r)| r));
                if total < self.r {
                    // α < 1: saturate every leaf.
                    for (p, ru) in leaves {
                        self.y[p] = self.y[p].add(&ru);
                        self.pending_grants[p] = Some(ru);
                    }
                    self.r = self.r.sub(&total);
                } else {
                    // α ≥ 1: scale grants by r_v / Σ r_u, saturating me.
                    for (p, ru) in leaves {
                        let g = ru.mul(&self.r).div(&total);
                        self.y[p] = self.y[p].add(&g);
                        self.pending_grants[p] = Some(g);
                    }
                    self.r = V::zero();
                }
            }
            Phase::StarGrant(_) => {
                if let Some(p) = self.await_grant.take() {
                    // A corrupted root may fail to grant; skip (totality).
                    if let VcMsg::Grant(g) = incoming[p] {
                        self.y[p] = self.y[p].add(g);
                        self.r = self.r.sub(g);
                    }
                }
                for g in self.pending_grants.iter_mut() {
                    *g = None;
                }
            }
        }

        (round == cfg.total_rounds())
            .then(|| VcOutput { in_cover: self.r.is_zero(), y: self.y.clone() })
    }
}

/// Result of a full §3 run: the packing, the cover, and instrumentation.
#[derive(Clone, Debug)]
pub struct VcRun<V> {
    /// The maximal edge packing found.
    pub packing: EdgePacking<V>,
    /// 2-approximate vertex cover (the saturated nodes), by node id.
    pub cover: Vec<bool>,
    /// Engine instrumentation (rounds = the full fixed schedule).
    pub trace: Trace,
}

/// Runs the §3 algorithm with explicit global bounds (Δ, W).
///
/// # Panics
/// Panics if some degree exceeds Δ or some weight lies outside 1..=W, or if
/// the two endpoint copies of an edge value disagree (cannot happen — checked
/// as an internal consistency assertion).
pub fn run_edge_packing_with<V: PackingValue>(
    g: &Graph,
    weights: &[u64],
    delta: usize,
    max_weight: u64,
    threads: usize,
) -> Result<VcRun<V>, SimError> {
    let cfg = VcConfig::new(delta, max_weight);
    let res: RunResult<VcOutput<V>> =
        run_pn_threads::<EdgePackingNode<V>>(g, &cfg, weights, cfg.total_rounds(), threads)?;
    Ok(assemble_vc_run(g, res))
}

/// Folds per-node §3 outputs into the cover and the per-edge packing,
/// asserting that the two endpoint copies of every edge value agree. This is
/// the one place raw `VcOutput`s become a `(cover, packing)` pair — the
/// synchronous entry points and the asynchronous-runtime consumers (which
/// hold raw outputs) both funnel through it.
///
/// # Panics
/// Panics if the endpoint copies of some `y(e)` disagree (cannot happen in a
/// fault-free §3 run — an internal consistency assertion).
pub fn fold_vc_outputs<V: PackingValue>(
    g: &Graph,
    outputs: &[VcOutput<V>],
) -> (Vec<bool>, EdgePacking<V>) {
    let mut y = vec![V::zero(); g.m()];
    for (v, out) in outputs.iter().enumerate() {
        for (p, val) in out.y.iter().enumerate() {
            let e = g.edge_of(g.arc(v, p));
            if v < g.head(g.arc(v, p)) {
                y[e] = val.clone();
            } else {
                assert_eq!(&y[e], val, "endpoint copies of y(e) disagree (edge {e})");
            }
        }
    }
    (outputs.iter().map(|o| o.in_cover).collect(), EdgePacking { y })
}

/// Folds per-node outputs into the per-edge packing and the cover.
fn assemble_vc_run<V: PackingValue>(g: &Graph, res: RunResult<VcOutput<V>>) -> VcRun<V> {
    let (cover, packing) = fold_vc_outputs(g, &res.outputs);
    VcRun { packing, cover, trace: res.trace }
}

/// One §3 instance of a batched run: a graph, its node weights, and the
/// global bounds (Δ, W) the anonymous nodes are told.
#[derive(Clone, Copy, Debug)]
pub struct VcInstance<'a> {
    /// Communication graph.
    pub graph: &'a Graph,
    /// Node weights, indexed by node id.
    pub weights: &'a [u64],
    /// Maximum degree bound Δ.
    pub delta: usize,
    /// Maximum weight bound W.
    pub max_weight: u64,
}

impl<'a> VcInstance<'a> {
    /// An instance with bounds derived from the graph and weights.
    pub fn new(graph: &'a Graph, weights: &'a [u64]) -> Self {
        let delta = graph.max_degree();
        let max_weight = weights.iter().copied().max().unwrap_or(1).max(1);
        VcInstance { graph, weights, delta, max_weight }
    }

    /// An instance with explicit global bounds (Δ, W).
    pub fn with_bounds(
        graph: &'a Graph,
        weights: &'a [u64],
        delta: usize,
        max_weight: u64,
    ) -> Self {
        VcInstance { graph, weights, delta, max_weight }
    }
}

/// Runs the §3 algorithm on many independent instances across one pool of
/// `threads` workers — the batched entry point the experiment binaries and
/// service layers funnel through. `results[i]` corresponds to
/// `instances[i]`.
pub fn run_edge_packing_many<V: PackingValue>(
    instances: &[VcInstance<'_>],
    threads: usize,
) -> Vec<Result<VcRun<V>, SimError>> {
    let cfgs: Vec<VcConfig> =
        instances.iter().map(|i| VcConfig::new(i.delta, i.max_weight)).collect();
    let jobs: Vec<PnJob<'_, EdgePackingNode<V>>> = instances
        .iter()
        .zip(&cfgs)
        .map(|(i, cfg)| PnJob::new(i.graph, cfg, i.weights, cfg.total_rounds()))
        .collect();
    run_pn_many(&jobs, threads)
        .into_iter()
        .zip(instances)
        .map(|(res, i)| res.map(|r| assemble_vc_run(i.graph, r)))
        .collect()
}

/// Runs the §3 algorithm deriving Δ and W from the instance.
pub fn run_edge_packing<V: PackingValue>(g: &Graph, weights: &[u64]) -> Result<VcRun<V>, SimError> {
    let delta = g.max_degree();
    let w = weights.iter().copied().max().unwrap_or(1).max(1);
    run_edge_packing_with(g, weights, delta, w, 1)
}

//! §4: maximal fractional packing — and hence f-approximate minimum-weight
//! set cover — in **O(f²k² + fk·log\*W)** rounds in the **broadcast model**.
//!
//! Both subset nodes and elements run the same node program (they are all
//! computational entities of the bipartite graph H); the role comes from the
//! local input. Writing `D = (k−1)·f` (the degree bound of the implicit
//! multigraph K of length-2 paths), the fixed schedule per iteration
//! `j ∈ {1, …, D+1}` is:
//!
//! | rounds       | phase                                                    |
//! |--------------|----------------------------------------------------------|
//! | `5(D+1)`     | saturation phase for each colour i (steps (i)–(vi), §4.3) |
//! | `2`          | saturation-status refresh + χ-colouring c₁ from p(u)      |
//! | `2·T_cv`     | weak colour reduction (§4.5), two broadcast rounds per Cole–Vishkin step |
//! | `10(D+1)`    | trivial colour reduction 6(D+1) → D+1, two rounds per class |
//!
//! plus two final rounds so subsets learn their saturation status. One
//! deliberate deviation from the paper text: §4.5 claims repeated
//! Cole–Vishkin yields a weak **3**-colouring, but the CV fixpoint is 6
//! colours and the standard 6→3 shift-down is only sound on rooted trees,
//! not on the DAG B (nodes may have successors of several colours). We stop
//! at a weak **6**-colouring and set `c₃ = 6c + c₂`; every property the proof
//! uses — (a) B′ edges become multicoloured, (b) multicoloured edges of K
//! stay multicoloured — is preserved, and only the constant in O(D) changes.

use crate::encode::{cv_step, cv_step_root, CvSchedule, SeqEncoder};
use crate::packing::FractionalPacking;
use anonet_bigmath::{PackingValue, UBig};
use anonet_sim::{
    run_bcast_many, run_bcast_threads, BcastAlgorithm, BcastJob, MessageSize, RunResult,
    SetCoverInstance, SimError, Trace,
};

/// Global configuration: the paper's f, k, W and derived quantities.
#[derive(Clone, Debug)]
pub struct ScConfig {
    /// Maximum element degree f.
    pub f: usize,
    /// Maximum subset size k.
    pub k: usize,
    /// Maximum subset weight W.
    pub max_weight: u64,
    /// `D = (k−1)·f`, the degree bound of K.
    pub d: usize,
    /// The §4.4 encoder for `c₁` (scale `(k!)^((D+1)²)`).
    pub encoder: SeqEncoder,
    /// Cole–Vishkin steps for the weak colour reduction.
    pub cv_steps: u32,
}

impl ScConfig {
    /// Builds the configuration for bounds (f, k, W).
    pub fn new(f: usize, k: usize, max_weight: u64) -> ScConfig {
        assert!(f >= 1 && k >= 1, "need f, k >= 1");
        assert!(max_weight >= 1, "W must be at least 1");
        let d = (k - 1) * f;
        let scale = UBig::factorial(k as u64).pow(((d + 1) * (d + 1)) as u64);
        let encoder = SeqEncoder::single(scale, max_weight);
        let cv_steps = CvSchedule::for_bound(&encoder.code_bound()).steps;
        ScConfig { f, k, max_weight, d, encoder, cv_steps }
    }

    /// Number of colours `D + 1`.
    pub fn colours(&self) -> usize {
        self.d + 1
    }

    /// Rounds per iteration: `15(D+1) + 2 + 2·T_cv`.
    fn per_iter(&self) -> u64 {
        15 * self.colours() as u64 + 2 + 2 * self.cv_steps as u64
    }

    /// Total schedule length: `(D+1)·per_iter + 2` — the Theorem 2 bound
    /// O(f²k² + fk·log\*W) with explicit constants.
    pub fn total_rounds(&self) -> u64 {
        self.colours() as u64 * self.per_iter() + 2
    }

    fn phase(&self, round: u64) -> ScPhase {
        let r0 = round - 1; // 0-based
        let per = self.per_iter();
        let iters_end = self.colours() as u64 * per;
        if r0 >= iters_end {
            return match r0 - iters_end {
                0 => ScPhase::FinalY,
                _ => ScPhase::FinalResid,
            };
        }
        let rel = r0 % per;
        let sat_len = 5 * self.colours() as u64;
        if rel < sat_len {
            return ScPhase::Sat {
                colour: (rel / 5) as u32,
                step: (rel % 5) as u8,
                iter_start: rel == 0,
            };
        }
        let rel = rel - sat_len;
        if rel == 0 {
            return ScPhase::StatusY;
        }
        if rel == 1 {
            return ScPhase::StatusResid;
        }
        let rel = rel - 2;
        if rel < 2 * self.cv_steps as u64 {
            return ScPhase::WeakCv {
                sub: (rel % 2) as u8,
                last_step: rel / 2 == self.cv_steps as u64 - 1,
            };
        }
        let rel = rel - 2 * self.cv_steps as u64;
        let class_idx = rel / 2;
        ScPhase::Reduce {
            colour: (6 * self.colours() as u64 - 1 - class_idx) as u32,
            sub: (rel % 2) as u8,
            last_class: class_idx == 5 * self.colours() as u64 - 1,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ScPhase {
    /// Saturation phase (§4.3) for one colour; `step` is (i)–(v) as 0..5.
    Sat { colour: u32, step: u8, iter_start: bool },
    /// Colouring-phase status refresh: elements broadcast y.
    StatusY,
    /// Colouring-phase status refresh: subsets broadcast residuals.
    StatusResid,
    /// Weak colour reduction (§4.5), one CV step = 2 broadcast sub-rounds.
    WeakCv { sub: u8, last_step: bool },
    /// Trivial colour reduction class; `colour` is the class being eliminated.
    Reduce { colour: u32, sub: u8, last_class: bool },
    /// Final round: elements broadcast y.
    FinalY,
    /// Final round: subsets broadcast residuals.
    FinalResid,
}

/// Wire messages of the §4 algorithm (broadcast model: `Ord` lets the engine
/// canonicalise the incoming multiset).
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScMsg<V> {
    /// No content.
    #[default]
    Nil,
    /// Element: current `y(u)`.
    Y(V),
    /// Subset: current residual `r_y(s)`.
    Resid(V),
    /// Element: "I am in `U_yi`".
    InUyi,
    /// Subset: `x_i(s)`.
    X(V),
    /// Element: `p(u)`.
    P(V),
    /// Element (weak CV sub-round 1): `(c′(v), c(v), p(v))`.
    Triple(UBig, u32, V),
    /// Subset (weak CV sub-round 2): `{(c′(v), i, x_i(s)) : p(v) = q_i(s)}`.
    Triples(Vec<(UBig, u32, V)>),
    /// Element (reduction sub-round 1): current colour `c₃`.
    Col(u32),
    /// Subset (reduction sub-round 2): set of element colours seen.
    Cols(Vec<u32>),
}

impl<V: PackingValue> MessageSize for ScMsg<V> {
    fn approx_bits(&self) -> u64 {
        match self {
            ScMsg::Nil | ScMsg::InUyi => 1,
            ScMsg::Y(v) | ScMsg::Resid(v) | ScMsg::X(v) | ScMsg::P(v) => v.wire_bits(),
            ScMsg::Triple(c, _, p) => c.bits() + 32 + p.wire_bits(),
            ScMsg::Triples(ts) => {
                64 + ts.iter().map(|(c, _, x)| c.bits() + 32 + x.wire_bits()).sum::<u64>()
            }
            ScMsg::Col(_) => 32,
            ScMsg::Cols(cs) => 64 + 32 * cs.len() as u64,
        }
    }
}

/// Node state: either a subset node or an element node.
#[derive(Clone, Debug)]
pub enum ScNode<V> {
    /// A subset node `s ∈ S`.
    Subset(SubsetState<V>),
    /// An element `u ∈ U`.
    Element(ElementState<V>),
}

impl<V: PackingValue> ScNode<V> {
    /// Element view `(y, saturated, colour)` — trace instrumentation for the
    /// Fig. 1 worked example (a real node cannot be observed like this).
    pub fn element_view(&self) -> Option<(&V, bool, u32)> {
        match self {
            ScNode::Element(e) => Some((&e.y, e.saturated, e.c)),
            ScNode::Subset(_) => None,
        }
    }

    /// Subset view `(residual,)` — trace instrumentation.
    pub fn subset_resid(&self) -> Option<&V> {
        match self {
            ScNode::Subset(s) => Some(&s.resid),
            ScNode::Element(_) => None,
        }
    }
}

/// Subset-node state.
#[derive(Clone, Debug)]
pub struct SubsetState<V> {
    weight: V,
    /// Residual `r_y(s)` (recomputed whenever elements broadcast y).
    resid: V,
    /// `x_i(s)` per colour of the current iteration.
    x: Vec<Option<V>>,
    /// `q_i(s)` per colour of the current iteration.
    q: Vec<Option<V>>,
    /// Triples to broadcast in the next weak-CV sub-round.
    pending_triples: Vec<(UBig, u32, V)>,
    /// Colour set to broadcast in the next reduction sub-round.
    pending_cols: Vec<u32>,
}

/// Element-node state.
#[derive(Clone, Debug)]
pub struct ElementState<V> {
    /// Current improper colouring `c(u) ∈ {0, …, D}` (paper: 1..D+1).
    c: u32,
    /// `y(u)`.
    y: V,
    /// Whether some neighbouring subset is saturated (monotone).
    saturated: bool,
    /// Membership in `U_yi` for the current saturation phase.
    in_uyi: bool,
    /// `p(u)` from this iteration's saturation phase (for colour c(u)).
    p: Option<V>,
    /// Weak-CV working colour `c′(u)`.
    cprime: Option<UBig>,
    /// `c₃(u)` during the trivial reduction.
    c3: u32,
}

/// Per-node output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScOutput<V> {
    /// Subset node output.
    Subset {
        /// Whether the subset is saturated, i.e. joins the cover.
        in_cover: bool,
    },
    /// Element node output.
    Element {
        /// Final `y(u)`.
        y: V,
        /// Whether the element ended saturated (Theorem 2: always true).
        saturated: bool,
    },
}

impl<V: PackingValue> BcastAlgorithm for ScNode<V> {
    type Msg = ScMsg<V>;
    type Input = Option<u64>;
    type Output = ScOutput<V>;
    type Config = ScConfig;

    fn init(cfg: &ScConfig, degree: usize, input: &Option<u64>) -> Self {
        match input {
            Some(w) => {
                assert!(degree <= cfg.k, "subset size {degree} exceeds k = {}", cfg.k);
                assert!(
                    *w >= 1 && *w <= cfg.max_weight,
                    "weight {w} outside 1..=W = {}",
                    cfg.max_weight
                );
                ScNode::Subset(SubsetState {
                    weight: V::from_u64(*w),
                    resid: V::from_u64(*w),
                    x: vec![None; cfg.colours()],
                    q: vec![None; cfg.colours()],
                    pending_triples: Vec::new(),
                    pending_cols: Vec::new(),
                })
            }
            None => {
                assert!(degree <= cfg.f, "element degree {degree} exceeds f = {}", cfg.f);
                ScNode::Element(ElementState {
                    c: 0,
                    y: V::zero(),
                    saturated: false,
                    in_uyi: false,
                    p: None,
                    cprime: None,
                    c3: 0,
                })
            }
        }
    }

    fn send(&self, cfg: &ScConfig, round: u64) -> ScMsg<V> {
        match (self, cfg.phase(round)) {
            // ---- saturation phase (§4.3) ----
            (ScNode::Element(e), ScPhase::Sat { step: 0, .. }) => ScMsg::Y(e.y.clone()),
            (ScNode::Subset(s), ScPhase::Sat { step: 1, .. }) => ScMsg::Resid(s.resid.clone()),
            (ScNode::Element(e), ScPhase::Sat { step: 2, .. }) => {
                if e.in_uyi {
                    ScMsg::InUyi
                } else {
                    ScMsg::Nil
                }
            }
            (ScNode::Subset(s), ScPhase::Sat { colour, step: 3, .. }) => {
                match &s.x[colour as usize] {
                    Some(x) => ScMsg::X(x.clone()),
                    None => ScMsg::Nil,
                }
            }
            (ScNode::Element(e), ScPhase::Sat { step: 4, .. }) => {
                if e.in_uyi {
                    ScMsg::P(e.p.clone().expect("U_yi element has p"))
                } else {
                    ScMsg::Nil
                }
            }
            // ---- colouring-phase status refresh / final rounds ----
            (ScNode::Element(e), ScPhase::StatusY) | (ScNode::Element(e), ScPhase::FinalY) => {
                ScMsg::Y(e.y.clone())
            }
            (ScNode::Subset(s), ScPhase::StatusResid)
            | (ScNode::Subset(s), ScPhase::FinalResid) => ScMsg::Resid(s.resid.clone()),
            // ---- weak colour reduction (§4.5) ----
            (ScNode::Element(e), ScPhase::WeakCv { sub: 0, .. }) => {
                if e.saturated {
                    ScMsg::Nil
                } else {
                    ScMsg::Triple(
                        e.cprime.clone().expect("unsaturated element has c′"),
                        e.c,
                        e.p.clone().expect("unsaturated element has p"),
                    )
                }
            }
            (ScNode::Subset(s), ScPhase::WeakCv { sub: 1, .. }) => {
                ScMsg::Triples(s.pending_triples.clone())
            }
            // ---- trivial colour reduction ----
            (ScNode::Element(e), ScPhase::Reduce { sub: 0, .. }) => {
                if e.saturated {
                    ScMsg::Nil
                } else {
                    ScMsg::Col(e.c3)
                }
            }
            (ScNode::Subset(s), ScPhase::Reduce { sub: 1, .. }) => {
                ScMsg::Cols(s.pending_cols.clone())
            }
            _ => ScMsg::Nil,
        }
    }

    fn receive(
        &mut self,
        cfg: &ScConfig,
        round: u64,
        incoming: &[&ScMsg<V>],
    ) -> Option<ScOutput<V>> {
        let phase = cfg.phase(round);
        match (&mut *self, phase) {
            // ---- saturation phase ----
            (ScNode::Subset(s), ScPhase::Sat { step: 0, iter_start, .. }) => {
                if iter_start {
                    s.x.iter_mut().for_each(|x| *x = None);
                    s.q.iter_mut().for_each(|q| *q = None);
                }
                s.recompute_resid(incoming);
            }
            (ScNode::Element(e), ScPhase::Sat { step: 0, iter_start, .. })
                if iter_start => {
                    e.p = None;
                    e.cprime = None;
                }
            (ScNode::Element(e), ScPhase::Sat { colour, step: 1, .. }) => {
                e.update_saturated(incoming);
                e.in_uyi = !e.saturated && e.c == colour;
            }
            (ScNode::Subset(s), ScPhase::Sat { colour, step: 2, .. }) => {
                let cnt = incoming.iter().filter(|m| matches!(m, ScMsg::InUyi)).count();
                s.x[colour as usize] = (cnt > 0).then(|| s.resid.div(&V::from_u64(cnt as u64)));
            }
            (ScNode::Element(e), ScPhase::Sat { step: 3, .. })
                if e.in_uyi => {
                    let p = incoming
                        .iter()
                        .filter_map(|m| match m {
                            ScMsg::X(x) => Some(x),
                            _ => None,
                        })
                        .min()
                        .expect("every neighbour of a U_yi element is in S'")
                        .clone();
                    e.p = Some(p);
                }
            (ScNode::Subset(s), ScPhase::Sat { colour, step: 4, .. }) => {
                s.q[colour as usize] = incoming
                    .iter()
                    .filter_map(|m| match m {
                        ScMsg::P(p) => Some(p),
                        _ => None,
                    })
                    .min()
                    .cloned();
            }
            (ScNode::Element(e), ScPhase::Sat { step: 4, .. })
                // Step (vi): y(u) ← y(u) + p(u).
                if e.in_uyi => {
                    e.y = e.y.add(e.p.as_ref().unwrap());
                    e.in_uyi = false;
                }
            // ---- colouring phase: status refresh + c₁ ----
            (ScNode::Subset(s), ScPhase::StatusY) => s.recompute_resid(incoming),
            (ScNode::Element(e), ScPhase::StatusResid) => {
                e.update_saturated(incoming);
                if !e.saturated {
                    // χ-colouring c₁ of B: the Lemma-2-style code of p(u).
                    let p = e.p.as_ref().expect("unsaturated element has p").clone();
                    e.cprime = Some(cfg.encoder.encode(std::slice::from_ref(&p)));
                }
            }
            // ---- weak colour reduction ----
            (ScNode::Subset(s), ScPhase::WeakCv { sub: 0, .. }) => {
                s.pending_triples.clear();
                for m in incoming {
                    if let ScMsg::Triple(cp, i, p) = m {
                        if s.q[*i as usize].as_ref() == Some(p) {
                            let x = s.x[*i as usize].clone().expect("q_i set implies x_i set");
                            s.pending_triples.push((cp.clone(), *i, x));
                        }
                    }
                }
                s.pending_triples.sort();
                s.pending_triples.dedup();
            }
            (ScNode::Element(e), ScPhase::WeakCv { sub: 1, last_step })
                if !e.saturated => {
                    let own = e.cprime.as_ref().unwrap();
                    let p = e.p.as_ref().unwrap();
                    // ℓ(u) = min L(u): smallest successor colour ≠ own.
                    let mut ell: Option<&UBig> = None;
                    for m in incoming {
                        if let ScMsg::Triples(ts) = m {
                            for (cp, i, x) in ts {
                                if *i == e.c && x == p && cp != own {
                                    ell = Some(match ell {
                                        Some(cur) if cur <= cp => cur,
                                        _ => cp,
                                    });
                                }
                            }
                        }
                    }
                    let new = match ell {
                        Some(l) => cv_step(own, l),
                        None => cv_step_root(own),
                    };
                    e.cprime = Some(new);
                    if last_step {
                        let c2 = e.cprime.as_ref().unwrap().to_u64().expect("c₂ ≤ 5");
                        debug_assert!(c2 <= 5);
                        e.c3 = 6 * e.c + c2 as u32;
                    }
                }
            // ---- trivial colour reduction ----
            (ScNode::Subset(s), ScPhase::Reduce { sub: 0, .. }) => {
                s.pending_cols.clear();
                for m in incoming {
                    if let ScMsg::Col(c) = m {
                        s.pending_cols.push(*c);
                    }
                }
                s.pending_cols.sort_unstable();
                s.pending_cols.dedup();
            }
            (ScNode::Element(e), ScPhase::Reduce { colour, sub: 1, last_class }) => {
                if !e.saturated && e.c3 == colour {
                    // Recolour into {0, …, D}, avoiding every K-neighbour
                    // colour different from my own.
                    let mut used = vec![false; cfg.colours()];
                    for m in incoming {
                        if let ScMsg::Cols(cs) = m {
                            for &c in cs {
                                if c != e.c3 && (c as usize) < cfg.colours() {
                                    used[c as usize] = true;
                                }
                            }
                        }
                    }
                    e.c3 = used
                        .iter()
                        .position(|&u| !u)
                        .expect("≤ D distinct K-neighbours, palette has D+1 colours")
                        as u32;
                }
                if last_class && !e.saturated {
                    debug_assert!((e.c3 as usize) < cfg.colours());
                    e.c = e.c3;
                }
            }
            // ---- final status ----
            (ScNode::Subset(s), ScPhase::FinalY) => s.recompute_resid(incoming),
            (ScNode::Element(e), ScPhase::FinalResid) => e.update_saturated(incoming),
            _ => {}
        }

        (round == cfg.total_rounds()).then(|| match self {
            ScNode::Subset(s) => ScOutput::Subset { in_cover: s.resid.is_zero() },
            ScNode::Element(e) => ScOutput::Element { y: e.y.clone(), saturated: e.saturated },
        })
    }
}

impl<V: PackingValue> SubsetState<V> {
    fn recompute_resid(&mut self, incoming: &[&ScMsg<V>]) {
        let mut load = V::zero();
        for m in incoming {
            match m {
                ScMsg::Y(y) => load = load.add(y),
                other => panic!("subset expected Y messages, got {other:?}"),
            }
        }
        self.resid = self.weight.sub(&load);
        debug_assert!(self.resid >= V::zero(), "packing exceeded subset weight");
    }
}

impl<V: PackingValue> ElementState<V> {
    fn update_saturated(&mut self, incoming: &[&ScMsg<V>]) {
        for m in incoming {
            match m {
                ScMsg::Resid(r) => {
                    if r.is_zero() {
                        self.saturated = true;
                    }
                }
                other => panic!("element expected Resid messages, got {other:?}"),
            }
        }
    }
}

/// Result of a full §4 run.
#[derive(Clone, Debug)]
pub struct ScRun<V> {
    /// The maximal fractional packing found.
    pub packing: FractionalPacking<V>,
    /// f-approximate set cover (saturated subsets), by subset index.
    pub cover: Vec<bool>,
    /// Engine instrumentation.
    pub trace: Trace,
}

/// Runs the §4 algorithm with explicit global bounds (f, k, W).
pub fn run_fractional_packing_with<V: PackingValue>(
    inst: &SetCoverInstance,
    f: usize,
    k: usize,
    max_weight: u64,
    threads: usize,
) -> Result<ScRun<V>, SimError> {
    let cfg = ScConfig::new(f, k, max_weight);
    let inputs: Vec<Option<u64>> =
        (0..inst.graph.n()).map(|v| inst.is_subset(v).then(|| inst.weights[v])).collect();
    let res: RunResult<ScOutput<V>> =
        run_bcast_threads::<ScNode<V>>(&inst.graph, &cfg, &inputs, cfg.total_rounds(), threads)?;
    Ok(assemble_sc_run(inst, res))
}

/// Runs the §4 algorithm deriving (f, k, W) from the instance.
pub fn run_fractional_packing<V: PackingValue>(
    inst: &SetCoverInstance,
) -> Result<ScRun<V>, SimError> {
    run_fractional_packing_with(inst, inst.f().max(1), inst.k().max(1), inst.max_weight().max(1), 1)
}

/// Folds per-node outputs into the packing and the cover.
fn assemble_sc_run<V: PackingValue>(
    inst: &SetCoverInstance,
    res: RunResult<ScOutput<V>>,
) -> ScRun<V> {
    let mut y = vec![V::zero(); inst.n_elements()];
    let mut cover = vec![false; inst.n_subsets];
    for (v, out) in res.outputs.iter().enumerate() {
        match out {
            ScOutput::Subset { in_cover } => cover[v] = *in_cover,
            ScOutput::Element { y: yu, .. } => y[v - inst.n_subsets] = yu.clone(),
        }
    }
    ScRun { packing: FractionalPacking { y }, cover, trace: res.trace }
}

/// One §4 instance of a batched run with explicit global bounds (f, k, W) —
/// the bounds every anonymous node is told, which fix the round schedule.
#[derive(Clone, Copy, Debug)]
pub struct ScInstance<'a> {
    /// The bipartite set-cover instance.
    pub inst: &'a SetCoverInstance,
    /// Maximum element frequency bound f.
    pub f: usize,
    /// Maximum subset size bound k.
    pub k: usize,
    /// Maximum weight bound W.
    pub max_weight: u64,
}

impl<'a> ScInstance<'a> {
    /// An instance with bounds derived from the instance itself.
    pub fn new(inst: &'a SetCoverInstance) -> Self {
        ScInstance {
            inst,
            f: inst.f().max(1),
            k: inst.k().max(1),
            max_weight: inst.max_weight().max(1),
        }
    }

    /// An instance with explicit global bounds (f, k, W).
    pub fn with_bounds(inst: &'a SetCoverInstance, f: usize, k: usize, max_weight: u64) -> Self {
        ScInstance { inst, f, k, max_weight }
    }
}

/// Runs the §4 algorithm on many independent instances with explicit
/// per-instance bounds across one pool of `threads` workers. `results[i]`
/// corresponds to `instances[i]`.
pub fn run_fractional_packing_many_with<V: PackingValue>(
    instances: &[ScInstance<'_>],
    threads: usize,
) -> Vec<Result<ScRun<V>, SimError>> {
    let cfgs: Vec<ScConfig> =
        instances.iter().map(|i| ScConfig::new(i.f, i.k, i.max_weight)).collect();
    let input_sets: Vec<Vec<Option<u64>>> = instances
        .iter()
        .map(|i| {
            (0..i.inst.graph.n()).map(|v| i.inst.is_subset(v).then(|| i.inst.weights[v])).collect()
        })
        .collect();
    let jobs: Vec<BcastJob<'_, ScNode<V>>> = instances
        .iter()
        .zip(&cfgs)
        .zip(&input_sets)
        .map(|((i, cfg), inputs)| BcastJob::new(&i.inst.graph, cfg, inputs, cfg.total_rounds()))
        .collect();
    run_bcast_many(&jobs, threads)
        .into_iter()
        .zip(instances)
        .map(|(res, i)| res.map(|r| assemble_sc_run(i.inst, r)))
        .collect()
}

/// Runs the §4 algorithm on many independent instances (bounds derived per
/// instance) across one pool of `threads` workers. `results[i]` corresponds
/// to `instances[i]`.
pub fn run_fractional_packing_many<V: PackingValue>(
    instances: &[SetCoverInstance],
    threads: usize,
) -> Vec<Result<ScRun<V>, SimError>> {
    let refs: Vec<ScInstance<'_>> = instances.iter().map(ScInstance::new).collect();
    run_fractional_packing_many_with(&refs, threads)
}

//! Edge packings and fractional packings — the LP-dual objects of §1.1/§1.2
//! — with exact feasibility, saturation, and maximality checks.

use anonet_bigmath::PackingValue;
use anonet_sim::{Graph, SetCoverInstance};

/// An edge packing `y: E → [0, ∞)` on a node-weighted graph (§1.1), stored by
/// undirected edge id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgePacking<V> {
    /// `y(e)` per edge id.
    pub y: Vec<V>,
}

impl<V: PackingValue> EdgePacking<V> {
    /// The all-zero packing.
    pub fn zero(g: &Graph) -> Self {
        EdgePacking { y: vec![V::zero(); g.m()] }
    }

    /// `y[v] = Σ_{e ∋ v} y(e)`.
    pub fn load(&self, g: &Graph, v: usize) -> V {
        let mut acc = V::zero();
        for a in g.arc_range(v) {
            acc = acc.add(&self.y[g.edge_of(a)]);
        }
        acc
    }

    /// Residual weight `r_y(v) = w_v − y[v]`.
    pub fn residual(&self, g: &Graph, weights: &[u64], v: usize) -> V {
        V::from_u64(weights[v]).sub(&self.load(g, v))
    }

    /// Feasibility: `y(e) ≥ 0` for all e and `y[v] ≤ w_v` for all v.
    pub fn is_feasible(&self, g: &Graph, weights: &[u64]) -> bool {
        self.y.iter().all(|v| !v.is_zero() || v.is_zero())
            && self.y.iter().all(|y| *y >= V::zero())
            && (0..g.n()).all(|v| self.load(g, v) <= V::from_u64(weights[v]))
    }

    /// Whether node `v` is saturated (`y[v] = w_v`).
    pub fn is_saturated(&self, g: &Graph, weights: &[u64], v: usize) -> bool {
        self.load(g, v) == V::from_u64(weights[v])
    }

    /// The saturated node set `C(y)` as a membership vector.
    pub fn saturated_nodes(&self, g: &Graph, weights: &[u64]) -> Vec<bool> {
        (0..g.n()).map(|v| self.is_saturated(g, weights, v)).collect()
    }

    /// Maximality: every edge has a saturated endpoint (§1.1).
    pub fn is_maximal(&self, g: &Graph, weights: &[u64]) -> bool {
        let sat = self.saturated_nodes(g, weights);
        g.edge_iter().all(|(_, u, v)| sat[u] || sat[v])
    }

    /// The dual objective `Σ_e y(e)` — a lower bound on the LP optimum and
    /// hence on the minimum-weight vertex cover.
    pub fn dual_value(&self) -> V {
        anonet_bigmath::value::sum(&self.y)
    }
}

/// A fractional packing `y: U → [0, ∞)` on a set-cover instance (§1.2),
/// stored by element index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FractionalPacking<V> {
    /// `y(u)` per element index (0-based).
    pub y: Vec<V>,
}

impl<V: PackingValue> FractionalPacking<V> {
    /// The all-zero packing.
    pub fn zero(inst: &SetCoverInstance) -> Self {
        FractionalPacking { y: vec![V::zero(); inst.n_elements()] }
    }

    /// `y[s] = Σ_{u ∈ N(s)} y(u)`.
    pub fn load(&self, inst: &SetCoverInstance, s: usize) -> V {
        let mut acc = V::zero();
        for u in inst.members(s) {
            acc = acc.add(&self.y[u]);
        }
        acc
    }

    /// Residual weight `r_y(s) = w_s − y[s]`.
    pub fn residual(&self, inst: &SetCoverInstance, s: usize) -> V {
        V::from_u64(inst.weights[s]).sub(&self.load(inst, s))
    }

    /// Feasibility: `y(u) ≥ 0` and `y[s] ≤ w_s` for every subset s.
    pub fn is_feasible(&self, inst: &SetCoverInstance) -> bool {
        self.y.iter().all(|y| *y >= V::zero())
            && (0..inst.n_subsets).all(|s| self.load(inst, s) <= V::from_u64(inst.weights[s]))
    }

    /// Whether subset `s` is saturated (`y[s] = w_s`).
    pub fn is_subset_saturated(&self, inst: &SetCoverInstance, s: usize) -> bool {
        self.load(inst, s) == V::from_u64(inst.weights[s])
    }

    /// The saturated subset collection `C(y)`.
    pub fn saturated_subsets(&self, inst: &SetCoverInstance) -> Vec<bool> {
        (0..inst.n_subsets).map(|s| self.is_subset_saturated(inst, s)).collect()
    }

    /// Whether element `u` is saturated (some containing subset saturated).
    pub fn is_element_saturated(&self, inst: &SetCoverInstance, u: usize) -> bool {
        inst.containing(u).any(|s| self.is_subset_saturated(inst, s))
    }

    /// Maximality: every element is saturated (§1.2).
    pub fn is_maximal(&self, inst: &SetCoverInstance) -> bool {
        (0..inst.n_elements()).all(|u| self.is_element_saturated(inst, u))
    }

    /// The dual objective `Σ_u y(u)` — a lower bound on the minimum-weight
    /// set cover.
    pub fn dual_value(&self) -> V {
        anonet_bigmath::value::sum(&self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_bigmath::BigRat;
    use anonet_sim::Graph;

    fn triangle() -> (Graph, Vec<u64>) {
        (Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap(), vec![2, 2, 2])
    }

    fn r(n: i64, d: u64) -> BigRat {
        BigRat::from_frac(n, d)
    }

    #[test]
    fn zero_packing_feasible_not_maximal() {
        let (g, w) = triangle();
        let p = EdgePacking::<BigRat>::zero(&g);
        assert!(p.is_feasible(&g, &w));
        assert!(!p.is_maximal(&g, &w));
        assert_eq!(p.dual_value(), BigRat::zero());
        assert_eq!(p.saturated_nodes(&g, &w), vec![false; 3]);
    }

    #[test]
    fn saturating_packing_on_triangle() {
        let (g, w) = triangle();
        // y = 1 on each edge: every node has load 2 = w.
        let p = EdgePacking { y: vec![r(1, 1); 3] };
        assert!(p.is_feasible(&g, &w));
        assert!(p.is_maximal(&g, &w));
        assert_eq!(p.saturated_nodes(&g, &w), vec![true; 3]);
        assert_eq!(p.dual_value(), r(3, 1));
        assert_eq!(p.residual(&g, &w, 0), BigRat::zero());
    }

    #[test]
    fn infeasible_detected() {
        let (g, w) = triangle();
        let p = EdgePacking { y: vec![r(3, 2), r(3, 2), BigRat::zero()] };
        // Node 1 load = 3/2 + ... node 1 is in edges 0 and 1: 3/2+3/2 = 3 > 2.
        assert!(!p.is_feasible(&g, &w));
        let neg = EdgePacking { y: vec![r(-1, 1), BigRat::zero(), BigRat::zero()] };
        assert!(!neg.is_feasible(&g, &w));
    }

    #[test]
    fn partial_maximality() {
        // Path 0-1-2, w = [1, 1, 1]; saturate only edge (0,1) by y=1.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let w = vec![1, 1, 1];
        let p = EdgePacking { y: vec![r(1, 1), BigRat::zero()] };
        assert!(p.is_feasible(&g, &w));
        // Edge (1,2): node 1 is saturated, so the edge is saturated: maximal!
        assert!(p.is_maximal(&g, &w));
        assert_eq!(p.saturated_nodes(&g, &w), vec![true, true, false]);
    }

    fn small_sc() -> SetCoverInstance {
        SetCoverInstance::new(3, &[vec![0, 1], vec![1, 2]], vec![4, 6]).unwrap()
    }

    #[test]
    fn fractional_packing_checks() {
        let inst = small_sc();
        let zero = FractionalPacking::<BigRat>::zero(&inst);
        assert!(zero.is_feasible(&inst));
        assert!(!zero.is_maximal(&inst));

        // y = (2, 2, 4): s0 load = 4 = w0 (saturated), s1 load = 6 = w1.
        let p = FractionalPacking { y: vec![r(2, 1), r(2, 1), r(4, 1)] };
        assert!(p.is_feasible(&inst));
        assert!(p.is_maximal(&inst));
        assert_eq!(p.saturated_subsets(&inst), vec![true, true]);
        assert_eq!(p.dual_value(), r(8, 1));

        // y = (4, 0, 0): s0 saturated; element 2 (only in s1) unsaturated.
        let q = FractionalPacking { y: vec![r(4, 1), BigRat::zero(), BigRat::zero()] };
        assert!(q.is_feasible(&inst));
        assert!(!q.is_maximal(&inst));
        assert!(q.is_element_saturated(&inst, 0));
        assert!(q.is_element_saturated(&inst, 1));
        assert!(!q.is_element_saturated(&inst, 2));

        // Overload s0.
        let bad = FractionalPacking { y: vec![r(3, 1), r(2, 1), BigRat::zero()] };
        assert!(!bad.is_feasible(&inst));
    }
}

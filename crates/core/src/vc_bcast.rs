//! §5: vertex cover in the **broadcast model** — maximal edge packing in
//! O(Δ² + Δ·log\*W) rounds on G itself, by simulating the §4 algorithm on
//! the incidence structure of G.
//!
//! The edge-packing instance (G, w) becomes a fractional-packing instance
//! (H, w) with `f = 2, k = Δ`: node v ↦ subset node s(v), edge e ↦ element
//! u(e). Elements are *not* physical entities, so each node v replays them:
//! v broadcasts the **full history** `h(v, i−1)` of s(v)'s §4 messages every
//! round; from its own history and a received neighbour history it can
//! re-simulate the shared element — and because the element treats its two
//! neighbours symmetrically (broadcast model), v never needs to know *which*
//! neighbour a history came from. This costs message size (the paper:
//! "without increasing the number of communication rounds, but at the cost
//! of increasing message complexity") — experiment E4 measures exactly that
//! blowup via the engine's bit instrumentation.
//!
//! Implementation note: element states are memoized by history *value*
//! (`HashMap<Vec<ScMsg>, state>`), which is broadcast-legal — the state is a
//! pure function of the unordered pair of endpoint histories — and avoids
//! the O(T) re-simulation per edge per round.
//!
//! Determinism note: the memo tables are keyed lookups only — nothing ever
//! *iterates* a `HashMap` here. Outputs (`elem_info`, message order) are
//! produced by walking `incoming` in port order and sorting collected
//! multisets, so `RandomState` never reaches a `Trace` or an output. The
//! `anonet-lint` `determinism` check enforces this; the waivers below each
//! assert membership-only use.

use crate::sc_bcast::{ScConfig, ScMsg, ScNode, ScOutput};
use crate::vc_pn::VcInstance;
use anonet_bigmath::PackingValue;
use anonet_sim::{
    run_bcast_many, run_bcast_threads, BcastAlgorithm, BcastJob, Graph, MessageSize, RunResult,
    SimError, Trace,
};
use std::collections::HashMap;

/// Global configuration: the §4 configuration of the derived instance
/// (`f = 2`, `k = Δ`).
#[derive(Clone, Debug)]
pub struct VcBcastConfig {
    /// Configuration of the simulated §4 run.
    pub sc: ScConfig,
}

impl VcBcastConfig {
    /// Builds the configuration for bounds Δ and W.
    pub fn new(delta: usize, max_weight: u64) -> VcBcastConfig {
        VcBcastConfig { sc: ScConfig::new(2, delta.max(1), max_weight) }
    }

    /// Total rounds on G: one more than the simulated §4 schedule (after
    /// G-round i, each node knows its subset's messages through §4-round i;
    /// the final §4 receive happens at G-round T+1).
    pub fn total_rounds(&self) -> u64 {
        self.sc.total_rounds() + 1
    }
}

/// One node of G simulating its subset node and incident elements.
pub struct VcBcastNode<V: PackingValue> {
    /// Simulator for s(v).
    subset: ScNode<V>,
    /// `h(v, i)`: messages s(v) sent in §4-rounds 1..=i.
    history: Vec<ScMsg<V>>,
    /// Element states after §4-round (i−1) receives, keyed by the
    /// neighbour's history value.
    memo: HashMap<Vec<ScMsg<V>>, ScNode<V>>, // lint: allow(determinism) — membership-only memo: get/insert by history value, never iterated
    /// Collected element outputs (multiset, sorted) at the end.
    elem_info: Vec<(V, bool)>,
    /// The subset's final output.
    in_cover: Option<bool>,
}

/// Output of a §5 node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VcBcastOutput<V> {
    /// Whether s(v) is saturated, i.e. v joins the vertex cover.
    pub in_cover: bool,
    /// Per incident element (unattributed multiset, sorted): final `(y,
    /// saturated)` — enough to reconstruct Σy and check maximality globally.
    pub elem_info: Vec<(V, bool)>,
}

/// History message: all §4 messages the sender's subset node has broadcast.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct HistoryMsg<V: PackingValue>(pub Vec<ScMsg<V>>);

impl<V: PackingValue> MessageSize for HistoryMsg<V> {
    fn approx_bits(&self) -> u64 {
        64 + self.0.iter().map(MessageSize::approx_bits).sum::<u64>()
    }
}

impl<V: PackingValue> BcastAlgorithm for VcBcastNode<V> {
    type Msg = HistoryMsg<V>;
    type Input = u64; // node weight
    type Output = VcBcastOutput<V>;
    type Config = VcBcastConfig;

    fn init(cfg: &VcBcastConfig, degree: usize, input: &u64) -> Self {
        VcBcastNode {
            subset: ScNode::init(&cfg.sc, degree, &Some(*input)),
            history: Vec::new(),
            memo: HashMap::new(), // lint: allow(determinism) — membership-only memo, never iterated
            elem_info: Vec::new(),
            in_cover: None,
        }
    }

    fn send(&self, _cfg: &VcBcastConfig, _round: u64) -> HistoryMsg<V> {
        HistoryMsg(self.history.clone())
    }

    fn receive(
        &mut self,
        cfg: &VcBcastConfig,
        round: u64,
        incoming: &[&HistoryMsg<V>],
    ) -> Option<VcBcastOutput<V>> {
        let total = cfg.sc.total_rounds();
        let t = round - 1; // the §4 round whose receive we can now perform

        if t >= 1 {
            let mut new_memo: HashMap<Vec<ScMsg<V>>, ScNode<V>> = HashMap::new(); // lint: allow(determinism) — membership-only memo, never iterated
            let mut elem_msgs: Vec<ScMsg<V>> = Vec::with_capacity(incoming.len());
            // Per distinct history value: the element's round-t broadcast and
            // (at the end) its output. Results are replayed once per
            // *occurrence* — neighbours with identical histories host
            // distinct but identically-behaving elements.
            type Replayed<V> = (ScMsg<V>, Option<(V, bool)>);
            let mut computed: HashMap<&Vec<ScMsg<V>>, Replayed<V>> = HashMap::new(); // lint: allow(determinism) — keyed lookups only; replay order follows `incoming` port order

            for h in incoming.iter().map(|m| &m.0) {
                debug_assert_eq!(h.len() as u64, t, "history length mismatch");
                if !computed.contains_key(h) {
                    // State after t−1 receives: fresh for t = 1, memoized
                    // prefix otherwise.
                    let mut st = if t == 1 {
                        ScNode::<V>::init(&cfg.sc, 2, &None)
                    } else {
                        self.memo
                            .get(&h[..(t - 1) as usize])
                            .expect("prefix state memoized last round")
                            .clone()
                    };
                    // The element's §4-round-t broadcast …
                    let msg_t = st.send(&cfg.sc, t);
                    // … and its round-t receive: the sorted pair of its two
                    // endpoint subsets' round-t messages.
                    let own = &self.history[(t - 1) as usize];
                    let theirs = &h[(t - 1) as usize];
                    let pair = if own <= theirs { [own, theirs] } else { [theirs, own] };
                    let out = st.receive(&cfg.sc, t, &pair);
                    let info = if t == total {
                        match out {
                            Some(ScOutput::Element { y, saturated }) => Some((y, saturated)),
                            _ => panic!("element must output at §4-round {total}"),
                        }
                    } else {
                        None
                    };
                    computed.insert(h, (msg_t, info));
                    new_memo.insert(h.clone(), st);
                }
                let (msg, info) = &computed[h];
                elem_msgs.push(msg.clone());
                if let Some(info) = info {
                    self.elem_info.push(info.clone());
                }
            }
            // Feed s(v) its §4-round-t receive (canonically sorted multiset).
            elem_msgs.sort();
            let refs: Vec<&ScMsg<V>> = elem_msgs.iter().collect();
            let out = self.subset.receive(&cfg.sc, t, &refs);
            if t == total {
                let Some(ScOutput::Subset { in_cover }) = out else {
                    panic!("subset must output at §4-round {total}");
                };
                self.in_cover = Some(in_cover);
            }
            self.memo = new_memo;
        }

        if t < total {
            // Advance s(v): its §4-round-(t+1) broadcast.
            let next = self.subset.send(&cfg.sc, t + 1);
            self.history.push(next);
            None
        } else {
            self.elem_info.sort();
            Some(VcBcastOutput {
                in_cover: self.in_cover.expect("set at t == total"),
                elem_info: self.elem_info.clone(),
            })
        }
    }
}

/// Result of a §5 run on G.
#[derive(Clone, Debug)]
pub struct VcBcastRun<V> {
    /// 2-approximate vertex cover by node id.
    pub cover: Vec<bool>,
    /// Σ y(e) over all edges (each element reported once per endpoint, so
    /// the per-node sums are halved).
    pub dual_value: V,
    /// Whether every simulated element ended saturated (Theorem 2 says yes —
    /// asserted by tests; exposed for the experiment harness).
    pub all_saturated: bool,
    /// Engine instrumentation — this is where the §5 message-size blowup
    /// shows up.
    pub trace: Trace,
}

/// Runs the §5 broadcast-model vertex cover with explicit bounds (Δ, W).
pub fn run_vc_broadcast_with<V: PackingValue>(
    g: &Graph,
    weights: &[u64],
    delta: usize,
    max_weight: u64,
    threads: usize,
) -> Result<VcBcastRun<V>, SimError> {
    let cfg = VcBcastConfig::new(delta, max_weight);
    let res: RunResult<VcBcastOutput<V>> =
        run_bcast_threads::<VcBcastNode<V>>(g, &cfg, weights, cfg.total_rounds(), threads)?;
    Ok(assemble_vc_bcast_run(res))
}

/// Folds per-node outputs into the cover and the dual value.
fn assemble_vc_bcast_run<V: PackingValue>(res: RunResult<VcBcastOutput<V>>) -> VcBcastRun<V> {
    let cover = res.outputs.iter().map(|o| o.in_cover).collect();
    let mut double_dual = V::zero();
    let mut all_saturated = true;
    for o in &res.outputs {
        for (y, sat) in &o.elem_info {
            double_dual = double_dual.add(y);
            all_saturated &= *sat;
        }
    }
    let dual_value = double_dual.div(&V::from_u64(2));
    VcBcastRun { cover, dual_value, all_saturated, trace: res.trace }
}

/// Runs the §5 broadcast-model vertex cover on many independent instances
/// across one pool of `threads` workers. `results[i]` corresponds to
/// `instances[i]` (bounds per [`VcInstance`]).
pub fn run_vc_broadcast_many<V: PackingValue>(
    instances: &[VcInstance<'_>],
    threads: usize,
) -> Vec<Result<VcBcastRun<V>, SimError>> {
    let cfgs: Vec<VcBcastConfig> =
        instances.iter().map(|i| VcBcastConfig::new(i.delta, i.max_weight)).collect();
    let jobs: Vec<BcastJob<'_, VcBcastNode<V>>> = instances
        .iter()
        .zip(&cfgs)
        .map(|(i, cfg)| BcastJob::new(i.graph, cfg, i.weights, cfg.total_rounds()))
        .collect();
    run_bcast_many(&jobs, threads).into_iter().map(|res| res.map(assemble_vc_bcast_run)).collect()
}

/// Runs the §5 broadcast-model vertex cover deriving Δ and W from the
/// instance.
pub fn run_vc_broadcast<V: PackingValue>(
    g: &Graph,
    weights: &[u64],
) -> Result<VcBcastRun<V>, SimError> {
    let delta = g.max_degree();
    let w = weights.iter().copied().max().unwrap_or(1).max(1);
    run_vc_broadcast_with(g, weights, delta, w, 1)
}

/// Builds the §5 incidence instance explicitly (for the equivalence tests and
/// the E4 experiment): subsets = nodes of G (in id order, port order of
/// members = port order of G), elements = edges of G.
pub fn incidence_instance(g: &Graph, weights: &[u64]) -> anonet_sim::SetCoverInstance {
    let members: Vec<Vec<usize>> =
        (0..g.n()).map(|v| g.arc_range(v).map(|a| g.edge_of(a)).collect()).collect();
    anonet_sim::SetCoverInstance::new(g.m(), &members, weights.to_vec())
        .expect("incidence instance of a valid graph is valid")
}

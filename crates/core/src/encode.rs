//! Colour encodings (Lemma 2) and Cole–Vishkin colour-reduction primitives.
//!
//! Phase I leaves every node with a sequence of Δ rationals; Lemma 2 shows
//! each element q satisfies `0 < q ≤ W` and `q·(Δ!)^Δ ∈ ℕ`, so the sequence
//! injects into `{1, …, χ}` for `χ = (W·(Δ!)^Δ)^Δ`. [`SeqEncoder`] implements
//! that injection *order-preservingly* (lexicographic sequence order =
//! numeric order of codes), which is what Phase II's edge orientation and the
//! Cole–Vishkin initial colours both need.
//!
//! [`cv_step`] is one Cole–Vishkin reduction: from colours of bit-length b to
//! colours `2i + bit < 2b`, where i is the lowest bit position at which the
//! node differs from its successor. [`CvSchedule`] computes — from the global
//! parameters only — how many steps reach the 6-colour fixpoint, so every
//! node runs the identical schedule without communication (§1.3: anonymous
//! nodes share only the global parameters).

use anonet_bigmath::{PackingValue, UBig};

/// Order-preserving injection from length-`len` sequences of packing values
/// (each in `(0, W]` with denominator dividing `scale`) into big integers.
#[derive(Clone, Debug)]
pub struct SeqEncoder {
    /// The Lemma 2 denominator bound, e.g. `(Δ!)^Δ`.
    pub scale: UBig,
    /// Digit base: `W·scale + 1` (digits are `q·scale ∈ {1, …, W·scale}`).
    pub base: UBig,
    /// Sequence length (Δ for Phase I).
    pub len: usize,
}

impl SeqEncoder {
    /// Encoder for Phase I of the edge-packing algorithm: sequences of Δ
    /// values with denominators dividing `(Δ!)^Δ`.
    pub fn phase1(delta: usize, max_weight: u64) -> SeqEncoder {
        let scale = UBig::factorial(delta as u64).pow(delta as u64);
        let base = {
            let mut b = UBig::from_u64(max_weight).mul_ref(&scale);
            b.add_assign_ref(&UBig::one());
            b
        };
        SeqEncoder { scale, base, len: delta }
    }

    /// Encoder for a single value (sequences of length 1) with the given
    /// denominator bound — used by the set-cover colouring phase, where
    /// `scale = (k!)^((D+1)²)` (§4.4).
    pub fn single(scale: UBig, max_weight: u64) -> SeqEncoder {
        let base = {
            let mut b = UBig::from_u64(max_weight).mul_ref(&scale);
            b.add_assign_ref(&UBig::one());
            b
        };
        SeqEncoder { scale, base, len: 1 }
    }

    /// Encodes a sequence; position 0 is the most significant digit, so code
    /// order equals lexicographic order (with numeric element order).
    ///
    /// # Panics
    /// Panics if the sequence has the wrong length or an element is out of
    /// range (non-positive, > W, or denominator not dividing `scale`).
    pub fn encode<V: PackingValue>(&self, seq: &[V]) -> UBig {
        assert_eq!(seq.len(), self.len, "sequence length mismatch");
        let mut acc = UBig::zero();
        for q in seq {
            assert!(q.is_positive(), "colour element must be positive");
            let digit = q.scale_to_uint(&self.scale);
            assert!(!digit.is_zero() && digit < self.base, "colour element out of range");
            acc = acc.mul_ref(&self.base);
            acc.add_assign_ref(&digit);
        }
        acc
    }

    /// Upper bound (exclusive) on codes: `base^len` — the paper's χ, up to
    /// the +1 in the digit base.
    pub fn code_bound(&self) -> UBig {
        self.base.pow(self.len as u64)
    }

    /// Non-panicking [`encode`](SeqEncoder::encode): `None` if the sequence
    /// has the wrong length or any element violates the Lemma 2 contract.
    /// Used by the self-stabilization wrapper, which must stay total under
    /// arbitrarily corrupted state.
    pub fn try_encode<V: PackingValue>(&self, seq: &[V]) -> Option<UBig> {
        if seq.len() != self.len {
            return None;
        }
        let mut acc = UBig::zero();
        for q in seq {
            if !q.is_positive() {
                return None;
            }
            let digit = q.checked_scale_to_uint(&self.scale)?;
            if digit.is_zero() || digit >= self.base {
                return None;
            }
            acc = acc.mul_ref(&self.base);
            acc.add_assign_ref(&digit);
        }
        Some(acc)
    }

    /// A guaranteed-valid fallback code (the all-ones sequence): used when a
    /// corrupted state fails [`try_encode`](SeqEncoder::try_encode).
    pub fn fallback_code<V: PackingValue>(&self) -> UBig {
        let ones = vec![V::one(); self.len];
        self.encode(&ones)
    }
}

/// Index of the lowest bit where `a` and `b` differ.
///
/// # Panics
/// Panics if `a == b` (Cole–Vishkin requires distinct successor colours).
pub fn first_diff_bit(a: &UBig, b: &UBig) -> u64 {
    let (la, lb) = (a.limbs(), b.limbs());
    let len = la.len().max(lb.len());
    for i in 0..len {
        let xa = la.get(i).copied().unwrap_or(0);
        let xb = lb.get(i).copied().unwrap_or(0);
        if xa != xb {
            return i as u64 * 64 + (xa ^ xb).trailing_zeros() as u64;
        }
    }
    panic!("first_diff_bit: colours are equal");
}

/// One Cole–Vishkin step for a node with a successor: the new colour is
/// `2i + bit_i(own)` where `i = first_diff_bit(own, successor)`.
pub fn cv_step(own: &UBig, successor: &UBig) -> UBig {
    let i = first_diff_bit(own, successor);
    let bit = u64::from(own.bit(i));
    UBig::from_u64(2 * i + bit)
}

/// The Cole–Vishkin step for a **root** (no successor): `bit_0(own)`,
/// guaranteed to differ from any child's step value (a child that differs
/// from the root at bit 0 keeps its own bit 0, which differs from the
/// root's).
pub fn cv_step_root(own: &UBig) -> UBig {
    UBig::from_u64(u64::from(own.bit(0)))
}

/// The deterministic Cole–Vishkin schedule for a given initial colour space.
///
/// All quantities depend only on the global parameters, so every node
/// computes the identical schedule locally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CvSchedule {
    /// Number of `cv_step` rounds needed to reach colours in `{0, …, 5}`.
    pub steps: u32,
}

impl CvSchedule {
    /// Schedule for initial colours `< bound`.
    pub fn for_bound(bound: &UBig) -> CvSchedule {
        // Colour-space bit length evolution: b -> bits(2b - 1); stop when all
        // colours fit in {0..5}, i.e. when values < 2b <= 6 (b <= 3).
        let mut b = bound.bits().max(1);
        let mut steps = 0u32;
        while b > 3 {
            b = 64 - (2 * b - 1).leading_zeros() as u64;
            steps += 1;
        }
        // One final step maps b <= 3 into {0..5}.
        CvSchedule { steps: steps + 1 }
    }

    /// log*-style growth: the step count is O(log* bound) (tested).
    pub fn rounds(&self) -> u64 {
        self.steps as u64
    }
}

/// Iterated logarithm `log* n` (base 2), the paper's complexity yardstick.
pub fn log_star(mut n: f64) -> u32 {
    let mut it = 0;
    while n > 1.0 {
        n = n.log2();
        it += 1;
    }
    it
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_bigmath::BigRat;

    #[test]
    fn encoder_is_order_preserving_injection() {
        let enc = SeqEncoder::phase1(3, 4); // scale = 6^3 = 216, base = 865
        let r = |n: i64, d: u64| BigRat::from_frac(n, d);
        let seqs = [
            vec![r(1, 2), r(1, 2), r(1, 1)],
            vec![r(1, 2), r(1, 2), r(2, 1)],
            vec![r(1, 2), r(1, 1), r(1, 3)],
            vec![r(1, 1), r(1, 3), r(1, 3)],
            vec![r(4, 1), r(4, 1), r(4, 1)],
        ];
        let codes: Vec<UBig> = seqs.iter().map(|s| enc.encode(s)).collect();
        // Injective.
        for i in 0..codes.len() {
            for j in i + 1..codes.len() {
                assert_ne!(codes[i], codes[j], "codes {i} vs {j}");
            }
        }
        // Lexicographic order preserved (seqs listed in increasing lex order).
        for w in codes.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Bound.
        for c in &codes {
            assert!(*c < enc.code_bound());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn encoder_rejects_zero_elements() {
        let enc = SeqEncoder::phase1(2, 4);
        let _ = enc.encode(&[BigRat::zero(), BigRat::one()]);
    }

    #[test]
    fn first_diff_bit_cases() {
        let u = UBig::from_u64;
        assert_eq!(first_diff_bit(&u(0b1010), &u(0b1000)), 1);
        assert_eq!(first_diff_bit(&u(1), &u(0)), 0);
        assert_eq!(first_diff_bit(&UBig::one().shl_bits(100), &UBig::zero()), 100);
        assert_eq!(first_diff_bit(&UBig::one().shl_bits(100), &UBig::one().shl_bits(101)), 100);
    }

    #[test]
    #[should_panic(expected = "equal")]
    fn first_diff_bit_equal_panics() {
        let _ = first_diff_bit(&UBig::from_u64(7), &UBig::from_u64(7));
    }

    #[test]
    fn cv_step_separates_chain() {
        // A directed path with distinct colours: after one step, adjacent
        // nodes still differ.
        let colours: Vec<UBig> =
            [83u64, 20, 91, 64, 3].iter().map(|&c| UBig::from_u64(c)).collect();
        let mut new = Vec::new();
        for i in 0..colours.len() {
            if i + 1 < colours.len() {
                new.push(cv_step(&colours[i], &colours[i + 1]));
            } else {
                new.push(cv_step_root(&colours[i]));
            }
        }
        for i in 0..new.len() - 1 {
            assert_ne!(new[i], new[i + 1], "position {i}");
        }
        // New colours are < 2 * bitlen(old bound).
        for c in &new {
            assert!(c.to_u64().unwrap() < 2 * 7);
        }
    }

    #[test]
    fn cv_root_child_never_collide() {
        // Exhaustive check over small colour pairs.
        for root in 0u64..64 {
            for child in 0u64..64 {
                if root == child {
                    continue;
                }
                let r = UBig::from_u64(root);
                let c = UBig::from_u64(child);
                assert_ne!(cv_step(&c, &r), cv_step_root(&r), "root={root} child={child}");
            }
        }
    }

    #[test]
    fn cv_schedule_log_star_growth() {
        let tiny = CvSchedule::for_bound(&UBig::from_u64(6));
        assert_eq!(tiny.steps, 1);
        let small = CvSchedule::for_bound(&UBig::from_u64(1 << 20));
        let huge = CvSchedule::for_bound(&UBig::from_u64(2).pow(1 << 20));
        // log* growth: a tower jump adds O(1) steps.
        assert!(small.steps >= 2);
        assert!(huge.steps <= small.steps + 3, "small={} huge={}", small.steps, huge.steps);
    }

    #[test]
    fn cv_schedule_is_sufficient() {
        // Simulate the worst case: run cv_step on a path of maximally distinct
        // colours for the scheduled number of steps; all end in {0..5}.
        let bound = UBig::from_u64(2).pow(300);
        let sched = CvSchedule::for_bound(&bound);
        let mut colours: Vec<UBig> = (0..40u64)
            .map(|i| {
                // Spread-out distinct colours below the bound.
                UBig::from_u64(i + 1).mul_ref(&UBig::from_u64(2).pow(290))
            })
            .collect();
        for _ in 0..sched.steps {
            let mut next = Vec::with_capacity(colours.len());
            for i in 0..colours.len() {
                if i + 1 < colours.len() {
                    next.push(cv_step(&colours[i], &colours[i + 1]));
                } else {
                    next.push(cv_step_root(&colours[i]));
                }
            }
            colours = next;
        }
        for (i, c) in colours.iter().enumerate() {
            assert!(c.to_u64().unwrap() <= 5, "colour {i} = {c}");
            if i + 1 < colours.len() {
                assert_ne!(colours[i], colours[i + 1]);
            }
        }
    }

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
        assert_eq!(log_star(2f64.powi(100)), 5);
    }
}

//! Machine-checkable approximation certificates (Bar-Yehuda–Even, §1.1/§1.2).
//!
//! An edge/fractional packing `y` is LP-dual-feasible, so `Σ y ≤ OPT`; the
//! saturated set C(y) satisfies `w(C) ≤ 2·Σy` (resp. `≤ f·Σy`). A
//! [`Certificate`] bundles both sides: it *proves* the approximation ratio of
//! a concrete run without knowing OPT — the experiments report
//! `certified_ratio = w(C)/Σy` next to the true ratio where an exact solver
//! is available.

use crate::packing::{EdgePacking, FractionalPacking};
use anonet_bigmath::PackingValue;
use anonet_sim::{Graph, SetCoverInstance};

/// A verified approximation certificate for one run.
#[derive(Clone, Debug)]
pub struct Certificate<V> {
    /// Total weight of the produced cover.
    pub cover_weight: u64,
    /// The dual objective Σy — a lower bound on OPT.
    pub dual_value: V,
    /// The guaranteed factor (2 for vertex cover, f for set cover).
    pub factor: u64,
}

impl<V: PackingValue> Certificate<V> {
    /// `w(C) / Σy` as f64 — an upper bound on the true approximation ratio
    /// (reporting only).
    pub fn certified_ratio(&self) -> f64 {
        if self.dual_value.is_zero() {
            if self.cover_weight == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.cover_weight as f64 / self.dual_value.to_f64()
        }
    }
}

/// Errors found while verifying a vertex-cover run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertifyError {
    /// The packing violates a constraint `y[v] ≤ w_v` or `y(e) ≥ 0`.
    Infeasible,
    /// Some edge has no saturated endpoint.
    NotMaximal,
    /// The claimed cover differs from the saturated set.
    CoverMismatch,
    /// Some edge is not covered.
    NotACover,
    /// `w(C) > factor · Σy`.
    RatioViolated,
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CertifyError::Infeasible => "packing infeasible",
            CertifyError::NotMaximal => "packing not maximal",
            CertifyError::CoverMismatch => "cover differs from saturated set",
            CertifyError::NotACover => "output is not a cover",
            CertifyError::RatioViolated => "factor·dual < cover weight",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for CertifyError {}

/// Verifies every §3 guarantee of a vertex-cover run and issues the
/// 2-approximation certificate.
pub fn certify_vertex_cover<V: PackingValue>(
    g: &Graph,
    weights: &[u64],
    packing: &EdgePacking<V>,
    cover: &[bool],
) -> Result<Certificate<V>, CertifyError> {
    if !packing.is_feasible(g, weights) {
        return Err(CertifyError::Infeasible);
    }
    if !packing.is_maximal(g, weights) {
        return Err(CertifyError::NotMaximal);
    }
    if packing.saturated_nodes(g, weights) != cover {
        return Err(CertifyError::CoverMismatch);
    }
    if !g.edge_iter().all(|(_, u, v)| cover[u] || cover[v]) {
        return Err(CertifyError::NotACover);
    }
    let cover_weight: u64 = (0..g.n()).filter(|&v| cover[v]).map(|v| weights[v]).sum();
    let dual = packing.dual_value();
    if V::from_u64(cover_weight) > dual.mul(&V::from_u64(2)) {
        return Err(CertifyError::RatioViolated);
    }
    Ok(Certificate { cover_weight, dual_value: dual, factor: 2 })
}

/// Verifies a vertex-cover run against an arbitrary **rational** factor
/// `num/den` and issues the certificate with the factor pre-scaled to an
/// integer: the returned certificate carries `factor = num` and
/// `dual_value = Σy/den`, so the standard integer-factor bound
/// `w(C) ≤ factor·dual` re-checked by clients is *exactly* the rational
/// bound `w(C) ≤ (num/den)·Σy` — no wire change needed. Since
/// `Σy/den ≤ Σy ≤ OPT`, the scaled dual is still a valid lower bound.
///
/// Unlike [`certify_vertex_cover`], neither maximality nor
/// cover-equals-saturated-set is required: portfolio solvers such as the
/// (2+ε) primal–dual family stop at (1−ε)-saturation and cover the frozen
/// set, which is sound but fails both §3-specific checks. What *is*
/// verified — dual feasibility, cover validity, and the exact ratio
/// inequality `den·w(C) ≤ num·Σy` — is everything the Bar-Yehuda–Even
/// argument needs.
pub fn certify_vertex_cover_rational<V: PackingValue>(
    g: &Graph,
    weights: &[u64],
    packing: &EdgePacking<V>,
    cover: &[bool],
    factor_num: u64,
    factor_den: u64,
) -> Result<Certificate<V>, CertifyError> {
    assert!(factor_den >= 1, "factor denominator must be positive");
    if !packing.is_feasible(g, weights) {
        return Err(CertifyError::Infeasible);
    }
    if cover.len() != g.n() || !g.edge_iter().all(|(_, u, v)| cover[u] || cover[v]) {
        return Err(CertifyError::NotACover);
    }
    let cover_weight: u64 = (0..g.n()).filter(|&v| cover[v]).map(|v| weights[v]).sum();
    let dual = packing.dual_value();
    let lhs = V::from_u64(cover_weight).mul(&V::from_u64(factor_den));
    if lhs > dual.mul(&V::from_u64(factor_num)) {
        return Err(CertifyError::RatioViolated);
    }
    let scaled = dual.div(&V::from_u64(factor_den));
    Ok(Certificate { cover_weight, dual_value: scaled, factor: factor_num })
}

/// Verifies every §4 guarantee of a set-cover run and issues the
/// f-approximation certificate.
pub fn certify_set_cover<V: PackingValue>(
    inst: &SetCoverInstance,
    packing: &FractionalPacking<V>,
    cover: &[bool],
) -> Result<Certificate<V>, CertifyError> {
    if !packing.is_feasible(inst) {
        return Err(CertifyError::Infeasible);
    }
    if !packing.is_maximal(inst) {
        return Err(CertifyError::NotMaximal);
    }
    if packing.saturated_subsets(inst) != cover {
        return Err(CertifyError::CoverMismatch);
    }
    if !inst.is_cover(cover) {
        return Err(CertifyError::NotACover);
    }
    let f = inst.f().max(1) as u64;
    let cover_weight = inst.cover_weight(cover);
    let dual = packing.dual_value();
    if V::from_u64(cover_weight) > dual.mul(&V::from_u64(f)) {
        return Err(CertifyError::RatioViolated);
    }
    Ok(Certificate { cover_weight, dual_value: dual, factor: f })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonet_bigmath::BigRat;

    #[test]
    fn valid_vc_certificate() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let w = [1u64, 5];
        let packing = EdgePacking { y: vec![BigRat::one()] };
        let cover = vec![true, false];
        let cert = certify_vertex_cover(&g, &w, &packing, &cover).unwrap();
        assert_eq!(cert.cover_weight, 1);
        assert_eq!(cert.dual_value, BigRat::one());
        assert_eq!(cert.factor, 2);
        assert!((cert.certified_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_maximal() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let w = [1u64, 5];
        let packing = EdgePacking { y: vec![BigRat::zero()] };
        assert_eq!(
            certify_vertex_cover(&g, &w, &packing, &[false, false]).unwrap_err(),
            CertifyError::NotMaximal
        );
    }

    #[test]
    fn rejects_infeasible() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let w = [1u64, 5];
        let packing = EdgePacking { y: vec![BigRat::from_u64(2)] };
        assert_eq!(
            certify_vertex_cover(&g, &w, &packing, &[true, false]).unwrap_err(),
            CertifyError::Infeasible
        );
    }

    #[test]
    fn rejects_cover_mismatch() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let w = [1u64, 5];
        let packing = EdgePacking { y: vec![BigRat::one()] };
        assert_eq!(
            certify_vertex_cover(&g, &w, &packing, &[true, true]).unwrap_err(),
            CertifyError::CoverMismatch
        );
    }

    #[test]
    fn rational_factor_certificate_scales_the_dual() {
        // Path 0-1-2, y = (1/3, 1/3): feasible, NOT maximal, cover = {1}.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let w = [1u64, 1, 1];
        let third = BigRat::from_frac(1, 3);
        let packing = EdgePacking { y: vec![third.clone(), third] };
        let cover = vec![false, true, false];
        // The §3 certifier rejects this run outright (not maximal) …
        assert_eq!(
            certify_vertex_cover(&g, &w, &packing, &cover).unwrap_err(),
            CertifyError::NotMaximal
        );
        // … but the rational certifier accepts it at factor 3/2:
        // w(C) = 1 ≤ (3/2)·(2/3) = 1, tight.
        let cert = certify_vertex_cover_rational(&g, &w, &packing, &cover, 3, 2).unwrap();
        assert_eq!(cert.cover_weight, 1);
        assert_eq!(cert.factor, 3);
        assert_eq!(cert.dual_value, BigRat::from_frac(1, 3)); // Σy/den = (2/3)/2
                                                              // The re-checked bound w ≤ factor·dual holds with equality.
        assert!(BigRat::from_u64(1) <= cert.dual_value.mul(&BigRat::from_u64(3)));
        // Factor 4/3 is violated exactly: (4/3)·(2/3) = 8/9 < 1.
        assert_eq!(
            certify_vertex_cover_rational(&g, &w, &packing, &cover, 4, 3).unwrap_err(),
            CertifyError::RatioViolated
        );
    }

    #[test]
    fn rational_factor_still_rejects_bad_runs() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let w = [1u64, 5];
        let over = EdgePacking { y: vec![BigRat::from_u64(2)] };
        assert_eq!(
            certify_vertex_cover_rational(&g, &w, &over, &[true, false], 2, 1).unwrap_err(),
            CertifyError::Infeasible
        );
        let ok = EdgePacking { y: vec![BigRat::one()] };
        assert_eq!(
            certify_vertex_cover_rational(&g, &w, &ok, &[false, false], 2, 1).unwrap_err(),
            CertifyError::NotACover
        );
    }

    #[test]
    fn valid_sc_certificate() {
        let inst = SetCoverInstance::new(2, &[vec![0, 1], vec![1]], vec![2, 5]).unwrap();
        let packing = FractionalPacking { y: vec![BigRat::one(), BigRat::one()] };
        // s0 load = 2 = w0: saturated; covers both elements.
        let cover = vec![true, false];
        let cert = certify_set_cover(&inst, &packing, &cover).unwrap();
        assert_eq!(cert.cover_weight, 2);
        assert_eq!(cert.factor, 2); // f = 2 (element 1 in two subsets)
    }
}

//! # anonet-core
//!
//! Reference implementation of Åstrand & Suomela, *"Fast Distributed
//! Approximation Algorithms for Vertex Cover and Set Cover in Anonymous
//! Networks"* (SPAA 2010):
//!
//! * [`vc_pn`] — §3: maximal edge packing / 2-approximate minimum-weight
//!   vertex cover in O(Δ + log\*W) rounds, port-numbering model;
//! * [`sc_bcast`] — §4: maximal fractional packing / f-approximate
//!   minimum-weight set cover in O(f²k² + fk·log\*W) rounds, broadcast model;
//! * [`vc_bcast`] — §5: the history-replay simulation giving a maximal edge
//!   packing in O(Δ² + Δ·log\*W) broadcast rounds on G itself;
//! * [`trivial`] — the folklore k-approximation for set cover (§2, §6);
//! * [`packing`], [`certify`] — dual objects and machine-checkable
//!   approximation certificates;
//! * [`encode`] — Lemma 2 colour encodings and Cole–Vishkin primitives;
//! * [`canon`] — canonical instance byte encodings, stable FNV digests, and
//!   certificate serialization (the service layer's wire substrate).
//!
//! All algorithms are deterministic, anonymous (no node identifiers), and
//! generic over the exact numeric type [`anonet_bigmath::PackingValue`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod certify;
pub mod encode;
pub mod packing;
pub mod sc_bcast;
pub mod trivial;
pub mod vc_bcast;
pub mod vc_pn;

pub use packing::{EdgePacking, FractionalPacking};
pub use vc_pn::{run_edge_packing, run_edge_packing_with, VcConfig, VcRun};

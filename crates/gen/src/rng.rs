//! Deterministic in-house PRNG (xoshiro256** seeded via splitmix64).
//!
//! All anonet workloads are generated from explicit seeds with this
//! generator, so every experiment is bit-reproducible across platforms and
//! toolchain versions — an external `rand` dependency would tie results to
//! its version. (Algorithms in this project are deterministic; randomness is
//! only for *instance generation* and the randomized baselines.)

/// xoshiro256** by Blackman & Vigna: a small, fast, high-quality PRNG.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via splitmix64, the
    /// procedure recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..bound` (Lemire-style rejection; `bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        // Rejection sampling to avoid modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` in `0..bound`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Geometric draw with mean `mean` (0 for `mean == 0`): the number of
    /// failures before the first success of a Bernoulli(1/(mean+1)) trial,
    /// via inverse transform — the discrete analogue of an exponential
    /// holding time. Used for latency/holding-time sampling in simulated
    /// networks; capped at `64 * (mean + 1)` so a pathological uniform draw
    /// cannot produce an absurd outlier.
    pub fn geometric(&mut self, mean: u64) -> u64 {
        if mean == 0 {
            return 0;
        }
        let p = 1.0 / (mean as f64 + 1.0);
        // U in (0, 1]: avoid ln(0).
        let u = 1.0 - self.f64();
        let draw = (u.ln() / (1.0 - p).ln()).floor();
        (draw as u64).min(64u64.saturating_mul(mean.saturating_add(1)))
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.index(i + 1);
            data.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// Derives an independent child generator (for parallel workload streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = Rng::new(12345);
        let mut b = Rng::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(54321);
        assert_ne!(Rng::new(12345).next_u64(), c.next_u64());
    }

    #[test]
    fn known_vector_stability() {
        // Pin the stream so accidental RNG changes fail loudly (experiment
        // reproducibility depends on it).
        let mut r = Rng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(9);
        for _ in 0..100 {
            let v = r.range_u64(5, 7);
            assert!((5..=7).contains(&v));
        }
        assert_eq!(r.range_u64(3, 3), 3);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Rng::new(11);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of 1000 uniforms is near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(13);
        let p = r.permutation(50);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn geometric_mean_and_bounds() {
        let mut r = Rng::new(21);
        assert_eq!(r.geometric(0), 0);
        let mean = 8u64;
        let mut sum = 0u64;
        for _ in 0..2000 {
            let v = r.geometric(mean);
            assert!(v <= 64 * (mean + 1));
            sum += v;
        }
        let avg = sum as f64 / 2000.0;
        assert!((avg - mean as f64).abs() < 1.0, "empirical mean {avg} far from {mean}");
    }

    #[test]
    fn geometric_p_one_is_always_zero() {
        // mean = 0 ⇔ success probability p = 1: zero failures, always.
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            assert_eq!(r.geometric(0), 0);
        }
    }

    #[test]
    fn geometric_tiny_p_respects_cap_without_overflow() {
        // Very small p (astronomical means): no panic, no overflow, and the
        // saturating cap 64·(mean+1) holds even where the product saturates.
        let mut r = Rng::new(2);
        for mean in [u64::MAX, u64::MAX / 2, 1 << 62, 1 << 40] {
            for _ in 0..50 {
                let v = r.geometric(mean);
                assert!(v <= 64u64.saturating_mul(mean.saturating_add(1)), "mean={mean}");
            }
        }
    }

    #[test]
    fn geometric_tail_bounds() {
        // The tail is genuinely geometric: P(X > 3·mean) ≈ (1-p)^{3·mean}
        // ≈ e^{-3} ≈ 5%. Check the tail exists but is small, and that the
        // hard cap is never exceeded.
        let mut r = Rng::new(3);
        let mean = 16u64;
        let n = 4000;
        let mut tail = 0usize;
        for _ in 0..n {
            let v = r.geometric(mean);
            assert!(v <= 64 * (mean + 1));
            if v > 3 * mean {
                tail += 1;
            }
        }
        let frac = tail as f64 / n as f64;
        assert!(frac > 0.005, "tail too thin: {frac}");
        assert!(frac < 0.12, "tail too fat: {frac}");
    }

    #[test]
    fn geometric_deterministic_by_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(77);
            (0..100).map(|_| r.geometric(5)).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(77);
            (0..100).map(|_| r.geometric(5)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn fork_streams_differ() {
        let mut r = Rng::new(17);
        let mut a = r.fork();
        let mut b = r.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

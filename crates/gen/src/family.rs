//! Graph families used across the experiments.
//!
//! Deterministic constructions (paths, cycles, grids, tori, hypercubes,
//! complete and complete-bipartite graphs, Petersen, Frucht) plus seeded
//! random families (bounded-degree G(n,p), random d-regular via the
//! configuration model, random bounded-degree trees). Every generator
//! documents its degree bound Δ, which the paper's algorithms take as a
//! global parameter.
//!
//! Determinism note: generators feed the engine's bit-identical Trace
//! oracle, so edge order (which fixes the port numbering) must never come
//! from a hash container's iteration order. `circulant` once collected
//! edges in a `HashSet` and sorted afterwards; it now uses a `BTreeSet`
//! directly, and the remaining `HashSet`s are membership-only dedup filters
//! (waived line by line). `anonet-lint`'s `determinism` check guards this.

use crate::rng::Rng;
use anonet_sim::Graph;

/// Path on `n` nodes (Δ = 2).
pub fn path(n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (1..n).map(|v| (v - 1, v)).collect();
    Graph::from_edges(n, &edges).expect("path is simple")
}

/// Cycle on `n ≥ 3` nodes (Δ = 2).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    Graph::from_edges(n, &edges).expect("cycle is simple")
}

/// Star with `leaves` leaves: node 0 is the hub (Δ = leaves).
pub fn star(leaves: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (1..=leaves).map(|v| (0, v)).collect();
    Graph::from_edges(leaves + 1, &edges).expect("star is simple")
}

/// Complete graph K_n (Δ = n-1).
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in u + 1..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("complete graph is simple")
}

/// Complete bipartite K_{a,b}; the `a`-side is nodes `0..a` (Δ = max(a,b)).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in 0..b {
            edges.push((u, a + v));
        }
    }
    Graph::from_edges(a + b, &edges).expect("K_{a,b} is simple")
}

/// w×h grid (Δ = 4); node (x, y) has id `y*w + x`.
pub fn grid(w: usize, h: usize) -> Graph {
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                edges.push((v, v + 1));
            }
            if y + 1 < h {
                edges.push((v, v + w));
            }
        }
    }
    Graph::from_edges(w * h, &edges).expect("grid is simple")
}

/// w×h torus with wraparound (4-regular for w, h ≥ 3).
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus needs w, h >= 3 to stay simple");
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            edges.push((v, y * w + (x + 1) % w));
            edges.push((v, ((y + 1) % h) * w + x));
        }
    }
    Graph::from_edges(w * h, &edges).expect("torus is simple")
}

/// d-dimensional hypercube on 2^d nodes (d-regular).
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut edges = Vec::new();
    for v in 0..n {
        for b in 0..d {
            let u = v ^ (1 << b);
            if v < u {
                edges.push((v, u));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("hypercube is simple")
}

/// The Petersen graph (3-regular, 10 nodes): outer 5-cycle 0..5, inner
/// pentagram 5..10, spokes i—i+5.
pub fn petersen() -> Graph {
    let mut edges = Vec::new();
    for i in 0..5 {
        edges.push((i, (i + 1) % 5)); // outer cycle
        edges.push((5 + i, 5 + (i + 2) % 5)); // pentagram
        edges.push((i, 5 + i)); // spokes
    }
    Graph::from_edges(10, &edges).expect("Petersen is simple")
}

/// The Frucht graph (3-regular, 12 nodes, **trivial automorphism group**) —
/// the paper's §7 example: a broadcast-model algorithm must still output the
/// perfectly symmetric edge packing y ≡ 1/3 on it, because the graph is
/// covered by the 3-regular tree.
///
/// Built from its LCF notation `[-5,-2,-4,2,5,-2,2,5,-2,-5,4,2]`.
pub fn frucht() -> Graph {
    const LCF: [i64; 12] = [-5, -2, -4, 2, 5, -2, 2, 5, -2, -5, 4, 2];
    let n = 12i64;
    let mut edges: Vec<(usize, usize)> = (0..12).map(|v| (v, (v + 1) % 12)).collect();
    let mut seen = std::collections::HashSet::new(); // lint: allow(determinism) — membership-only dedup; edge order comes from the LCF walk
    for (i, &l) in LCF.iter().enumerate() {
        let u = i as i64;
        let v = (u + l).rem_euclid(n);
        let key = (u.min(v) as usize, u.max(v) as usize);
        if seen.insert(key) {
            edges.push(key);
        }
    }
    Graph::from_edges(12, &edges).expect("Frucht graph is simple")
}

/// Circulant graph: node i adjacent to i ± o for each offset o (deterministic
/// regular expander-ish family).
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    // A BTreeSet rather than a HashSet: iteration below feeds the edge list
    // (and thus the port numbering), so the container's order must be the
    // key order, not RandomState's. This also drops the old post-sort.
    let mut edges = std::collections::BTreeSet::new();
    for v in 0..n {
        for &o in offsets {
            assert!(o >= 1 && o < n, "offset {o} out of range");
            let u = (v + o) % n;
            if u != v {
                edges.insert((v.min(u), v.max(u)));
            }
        }
    }
    let edges: Vec<_> = edges.into_iter().collect();
    Graph::from_edges(n, &edges).expect("circulant is simple")
}

/// Random d-regular graph via the configuration model with restarts
/// (`n*d` even, `d < n`). Falls back is not needed in practice: the success
/// probability per attempt is constant for d ≪ √n and we allow many attempts.
///
/// # Panics
/// Panics if `n*d` is odd, `d >= n`, or no simple pairing is found after
/// 1000 attempts (practically unreachable for sensible parameters).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d < n, "d-regular graph needs d < n");
    assert!((n * d) % 2 == 0, "n*d must be even");
    if d == 0 {
        return Graph::from_edges(n, &[]).unwrap();
    }
    let mut rng = Rng::new(seed);
    'attempt: for _ in 0..1000 {
        // Configuration model with local rejection: repeatedly draw a random
        // stub pair and accept it if it forms a fresh simple edge; restart
        // the whole attempt only when the leftover stubs are incompatible.
        let mut stubs: Vec<usize> = (0..n * d).map(|i| i / d).collect();
        rng.shuffle(&mut stubs);
        let mut seen = std::collections::HashSet::new(); // lint: allow(determinism) — membership-only simple-edge filter; edge order is the seeded stub draw
        let mut edges = Vec::with_capacity(n * d / 2);
        while !stubs.is_empty() {
            let mut placed = false;
            for _ in 0..100 {
                let i = rng.index(stubs.len());
                let j = rng.index(stubs.len());
                if i == j {
                    continue;
                }
                let (u, v) = (stubs[i], stubs[j]);
                if u == v || seen.contains(&(u.min(v), u.max(v))) {
                    continue;
                }
                seen.insert((u.min(v), u.max(v)));
                edges.push((u, v));
                // Remove the larger index first so the smaller stays valid.
                stubs.swap_remove(i.max(j));
                stubs.swap_remove(i.min(j));
                placed = true;
                break;
            }
            if !placed {
                continue 'attempt; // dead end: restart
            }
        }
        return Graph::from_edges(n, &edges).expect("checked simple");
    }
    panic!("random_regular({n}, {d}): no simple configuration in 1000 attempts");
}

/// Erdős–Rényi G(n, p) with a hard degree cap Δ (edges that would exceed the
/// cap at either endpoint are skipped, in a seeded random edge order).
pub fn gnp_capped(n: usize, p: f64, cap: usize, seed: u64) -> Graph {
    let mut rng = Rng::new(seed);
    let mut candidates = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if rng.chance(p) {
                candidates.push((u, v));
            }
        }
    }
    rng.shuffle(&mut candidates);
    let mut deg = vec![0usize; n];
    let mut edges = Vec::new();
    for (u, v) in candidates {
        if deg[u] < cap && deg[v] < cap {
            deg[u] += 1;
            deg[v] += 1;
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("subset of simple candidate edges")
}

/// Random tree on `n` nodes with maximum degree ≤ `cap ≥ 2` (random
/// attachment to a node with remaining capacity).
pub fn random_tree(n: usize, cap: usize, seed: u64) -> Graph {
    assert!(cap >= 2, "tree degree cap must be >= 2");
    let mut rng = Rng::new(seed);
    let mut deg = vec![0usize; n];
    let mut eligible: Vec<usize> = vec![0]; // nodes with deg < cap already in tree
    let mut edges = Vec::new();
    for v in 1..n {
        let idx = rng.index(eligible.len());
        let u = eligible[idx];
        edges.push((u, v));
        deg[u] += 1;
        deg[v] += 1;
        if deg[u] >= cap {
            eligible.swap_remove(idx);
        }
        if deg[v] < cap {
            eligible.push(v);
        }
    }
    Graph::from_edges(n, &edges).expect("tree is simple")
}

/// Caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves (Δ = legs + 2).
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let mut edges = Vec::new();
    let mut next = spine;
    for v in 0..spine {
        if v + 1 < spine {
            edges.push((v, v + 1));
        }
        for _ in 0..legs {
            edges.push((v, next));
            next += 1;
        }
    }
    Graph::from_edges(next, &edges).expect("caterpillar is simple")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_cycle_star() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(path(5).max_degree(), 2);
        assert_eq!(path(1).m(), 0);
        assert_eq!(cycle(6).m(), 6);
        assert!(cycle(6).adjacency().iter().all(|l| l.len() == 2));
        assert_eq!(star(7).max_degree(), 7);
        assert_eq!(star(7).m(), 7);
    }

    #[test]
    fn complete_graphs() {
        let k5 = complete(5);
        assert_eq!(k5.m(), 10);
        assert_eq!(k5.max_degree(), 4);
        let k23 = complete_bipartite(2, 3);
        assert_eq!(k23.m(), 6);
        assert_eq!(k23.degree(0), 3);
        assert_eq!(k23.degree(2), 2);
    }

    #[test]
    fn grid_torus() {
        let g = grid(4, 3);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 4 * 2); // horizontal + vertical
        assert_eq!(g.max_degree(), 4);
        let t = torus(4, 3);
        assert_eq!(t.m(), 2 * 12);
        assert!((0..12).all(|v| t.degree(v) == 4));
    }

    #[test]
    fn hypercube_regular() {
        let h = hypercube(4);
        assert_eq!(h.n(), 16);
        assert_eq!(h.m(), 32);
        assert!((0..16).all(|v| h.degree(v) == 4));
    }

    #[test]
    fn petersen_structure() {
        let p = petersen();
        assert_eq!(p.n(), 10);
        assert_eq!(p.m(), 15);
        assert!((0..10).all(|v| p.degree(v) == 3));
        // Petersen has girth 5: no triangles through node 0.
        for (_, u) in p.neighbors(0) {
            for (_, w) in p.neighbors(u) {
                assert!(w == 0 || !p.has_edge(0, w) || w == u);
            }
        }
    }

    #[test]
    fn frucht_structure() {
        let f = frucht();
        assert_eq!(f.n(), 12);
        assert_eq!(f.m(), 18);
        assert!((0..12).all(|v| f.degree(v) == 3));
    }

    #[test]
    fn circulant_regular() {
        let c = circulant(10, &[1, 3]);
        assert!((0..10).all(|v| c.degree(v) == 4));
        assert_eq!(c.m(), 20);
    }

    #[test]
    fn random_regular_is_regular_and_seeded() {
        for d in [2, 3, 4, 6] {
            let g = random_regular(24, d, 42);
            assert!((0..24).all(|v| g.degree(v) == d), "d={d}");
        }
        let a = random_regular(30, 3, 1);
        let b = random_regular(30, 3, 1);
        assert_eq!(a.adjacency(), b.adjacency());
        let c = random_regular(30, 3, 2);
        assert_ne!(a.adjacency(), c.adjacency());
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn random_regular_odd_total_panics() {
        let _ = random_regular(5, 3, 0);
    }

    #[test]
    fn gnp_respects_cap() {
        let g = gnp_capped(60, 0.3, 5, 7);
        assert!(g.max_degree() <= 5);
        assert!(g.m() > 0);
        // Deterministic per seed.
        assert_eq!(g.adjacency(), gnp_capped(60, 0.3, 5, 7).adjacency());
    }

    #[test]
    fn random_tree_is_tree_with_cap() {
        let g = random_tree(40, 3, 11);
        assert_eq!(g.m(), 39);
        assert!(g.max_degree() <= 3);
        // Connectivity: BFS from 0 reaches everyone.
        let mut seen = [false; 40];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for (_, u) in g.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 11);
        assert_eq!(g.max_degree(), 4); // interior spine: 2 spine + 2 legs
    }
}

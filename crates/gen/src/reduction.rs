//! The **Fig. 4 / Lemma 4** local reduction: independent set in a numbered
//! directed cycle ⇒ set cover.
//!
//! Given a directed n-cycle with unique identifiers and a constant p, the
//! paper builds a set cover instance H with a subset node `v₁` and an element
//! `v₂` per cycle node v, where `{u₁, v₂} ∈ A` iff the directed path u → v
//! has length ≤ p−1. A (p−ε)-approximate set cover on H would yield an
//! independent set of size ≥ nε/p² on the cycle, contradicting the
//! Czygrinow et al. / Lenzen–Wattenhofer lower bound. This module provides
//! the forward construction and the extraction step, so experiment E7 can
//! execute the whole pipeline.

use anonet_sim::SetCoverInstance;

/// Builds the reduction instance H for a directed n-cycle and locality p:
/// subset `u` covers elements `u, u+1, …, u+p−1` (mod n). Unit weights.
///
/// # Panics
/// Panics unless `n ≥ p ≥ 1` (the paper additionally takes n divisible by p
/// so that OPT = n/p exactly; we do not require it, see [`optimum_size`]).
pub fn cycle_cover_instance(n: usize, p: usize) -> SetCoverInstance {
    assert!(p >= 1 && n >= p, "need n >= p >= 1");
    let members: Vec<Vec<usize>> = (0..n).map(|u| (0..p).map(|d| (u + d) % n).collect()).collect();
    SetCoverInstance::new(n, &members, vec![1; n]).expect("cycle reduction instance is valid")
}

/// The paper's identifier scheme: cycle node `v` (with id v+1 in 1..=n) gives
/// subset node `v₁` the id `2(v+1) − 1` and element `v₂` the id `2(v+1)`.
/// Returns ids indexed by H's node ids (subsets first, then elements).
pub fn inherited_ids(n: usize) -> Vec<u64> {
    let mut ids = Vec::with_capacity(2 * n);
    for v in 0..n as u64 {
        ids.push(2 * (v + 1) - 1);
    }
    for v in 0..n as u64 {
        ids.push(2 * (v + 1));
    }
    ids
}

/// Minimum set-cover size of [`cycle_cover_instance`]: ⌈n/p⌉ (every subset
/// covers p consecutive elements of an n-cycle).
pub fn optimum_size(n: usize, p: usize) -> usize {
    n.div_ceil(p)
}

/// Extracts an independent set of the directed n-cycle from a set cover `C`
/// of the reduction instance, following §6: take `X = {v : v₁ ∉ C}`, look at
/// the paths induced by X, and keep each path's first node (in-degree 0).
///
/// Guarantees (tested): the result is an independent set of the cycle, and if
/// `|C| ≤ (1 − ε/p)·n` then the result has ≥ nε/p² nodes.
pub fn extract_independent_set(n: usize, cover: &[bool]) -> Vec<usize> {
    assert_eq!(cover.len(), n);
    (0..n)
        .filter(|&v| {
            let pred = (v + n - 1) % n;
            !cover[v] && cover[pred]
        })
        .collect()
}

/// Checks independence in the cycle (no two chosen nodes adjacent).
pub fn is_cycle_independent_set(n: usize, set: &[usize]) -> bool {
    let mut chosen = vec![false; n];
    for &v in set {
        if v >= n || chosen[v] {
            return false;
        }
        chosen[v] = true;
    }
    (0..n).all(|v| !(chosen[v] && chosen[(v + 1) % n]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_shape() {
        let inst = cycle_cover_instance(12, 3);
        assert_eq!(inst.n_subsets, 12);
        assert_eq!(inst.n_elements(), 12);
        assert_eq!(inst.f(), 3);
        assert_eq!(inst.k(), 3);
        // Subset 10 covers elements 10, 11, 0.
        assert_eq!(inst.members(10).collect::<Vec<_>>(), vec![10, 11, 0]);
        // Element 0 is covered by subsets 0, 11, 10.
        let mut c: Vec<usize> = inst.containing(0).collect();
        c.sort_unstable();
        assert_eq!(c, vec![0, 10, 11]);
    }

    #[test]
    fn optimal_cover_is_every_pth() {
        let (n, p) = (12, 3);
        let inst = cycle_cover_instance(n, p);
        let mut cover = vec![false; n];
        for v in (0..n).step_by(p) {
            cover[v] = true;
        }
        assert!(inst.is_cover(&cover));
        assert_eq!(cover.iter().filter(|&&b| b).count(), optimum_size(n, p));
        assert_eq!(optimum_size(10, 3), 4);
    }

    #[test]
    fn ids_are_unique_and_follow_paper() {
        let ids = inherited_ids(5);
        assert_eq!(ids, vec![1, 3, 5, 7, 9, 2, 4, 6, 8, 10]);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn extraction_yields_independent_set() {
        let n = 12;
        // A sloppy cover excluding the run {9, 10} (length 2 < p = 3, so
        // every element keeps a covering subset).
        let mut cover = vec![true; n];
        cover[9] = false;
        cover[10] = false;
        let inst = cycle_cover_instance(n, 3);
        assert!(inst.is_cover(&cover));
        let is = extract_independent_set(n, &cover);
        assert!(is_cycle_independent_set(n, &is));
        // X = {9, 10} is one path; its first node is 9.
        assert_eq!(is, vec![9]);
    }

    #[test]
    fn extraction_counts_lower_bound() {
        // If the cover misses many subsets, the IS is large: alternate cover.
        let n = 20;
        let p = 2;
        let inst = cycle_cover_instance(n, p);
        let cover: Vec<bool> = (0..n).map(|v| v % 2 == 0).collect();
        assert!(inst.is_cover(&cover));
        let is = extract_independent_set(n, &cover);
        assert!(is_cycle_independent_set(n, &is));
        // |C| = n/2 = (1 - eps/p) n with eps = 1: |I| >= n/p^2 = 5.
        assert!(is.len() >= n / (p * p), "|I| = {} < {}", is.len(), n / (p * p));
    }

    #[test]
    fn independence_checker_rejects_adjacent() {
        assert!(is_cycle_independent_set(6, &[0, 2, 4]));
        assert!(!is_cycle_independent_set(6, &[0, 1]));
        assert!(!is_cycle_independent_set(6, &[5, 0])); // wraparound adjacency
        assert!(!is_cycle_independent_set(6, &[3, 3])); // duplicates
        assert!(is_cycle_independent_set(6, &[]));
    }
}

//! # anonet-gen
//!
//! Deterministic workload generators for the anonet experiments: graph
//! families ([`family`]), weight regimes ([`weights`]), set-cover instances
//! including the Fig. 3 symmetric lower-bound construction ([`setcover`]),
//! and the Fig. 4 cycle-to-set-cover reduction ([`reduction`]).
//!
//! All randomness flows through the in-house xoshiro256** generator
//! ([`rng::Rng`]) seeded explicitly, so every instance is bit-reproducible
//! across platforms and toolchains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod family;
pub mod reduction;
pub mod rng;
pub mod setcover;
pub mod weights;

pub use rng::Rng;
pub use weights::WeightSpec;

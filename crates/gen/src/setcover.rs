//! Set-cover instance generators, including the paper's Fig. 3 symmetric
//! lower-bound instance.

use crate::rng::Rng;
use crate::weights::WeightSpec;
use anonet_sim::SetCoverInstance;

/// Random bipartite instance with element degree ≤ `f`, subset size ≤ `k`.
///
/// Each element joins `f` distinct subsets drawn uniformly among those with
/// remaining capacity (fewer if capacity runs out, but always at least one).
///
/// # Panics
/// Panics if total capacity `n_subsets * k < n_elements` (some element could
/// not be covered at all).
pub fn random_bounded(
    n_elements: usize,
    n_subsets: usize,
    f: usize,
    k: usize,
    weights: WeightSpec,
    seed: u64,
) -> SetCoverInstance {
    assert!(f >= 1 && k >= 1);
    assert!(
        n_subsets * k >= n_elements,
        "capacity n_subsets*k = {} cannot cover {} elements",
        n_subsets * k,
        n_elements
    );
    let mut rng = Rng::new(seed);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_subsets];
    let mut open: Vec<usize> = (0..n_subsets).collect(); // subsets with capacity left

    // Reserve one capacity slot per not-yet-placed element so every element
    // is guaranteed a primary subset; extra memberships (up to f−1) only
    // consume surplus capacity.
    let mut capacity = n_subsets * k;
    for u in 0..n_elements {
        let remaining_primaries = n_elements - u; // including this one
        let mut chosen: Vec<usize> = Vec::with_capacity(f);
        let mut pool = open.clone();
        // Primary membership (always possible by the reservation invariant).
        {
            let idx = rng.index(pool.len());
            chosen.push(pool.swap_remove(idx));
            capacity -= 1;
        }
        // Extras, while surplus capacity remains.
        for _ in 1..f {
            if pool.is_empty() || capacity < remaining_primaries {
                break;
            }
            let idx = rng.index(pool.len());
            chosen.push(pool.swap_remove(idx));
            capacity -= 1;
        }
        for &s in &chosen {
            members[s].push(u);
            if members[s].len() >= k {
                if let Some(pos) = open.iter().position(|&x| x == s) {
                    open.swap_remove(pos);
                }
            }
        }
    }
    // Drop empty subsets? Keep them: isolated subset nodes are legal
    // computational entities and exercise the degree-0 code path.
    let w = weights.draw_many(n_subsets, seed ^ 0x5e7c_0fe5);
    SetCoverInstance::new(n_elements, &members, w).expect("generator produces valid instances")
}

/// The symmetric complete bipartite instance of **Fig. 3**: `K_{p,p}` with
/// cyclically symmetric port numbering (subset `i`'s port `j` is element
/// `(i+j) mod p`, and element `m`'s port `j` is subset `(m+j) mod p`), and
/// equal weights.
///
/// The shift `i ↦ i+1` is a port-preserving automorphism acting transitively
/// on subsets, so every deterministic port-numbering algorithm gives all
/// subset nodes the same output; since the output must be a cover, it is all
/// of S — size p against the optimum 1. This is the instance behind the
/// p = min{f, k} lower bound (§6).
pub fn symmetric_kpp(p: usize, weight: u64) -> SetCoverInstance {
    assert!(p >= 1);
    let subset_ports: Vec<Vec<usize>> =
        (0..p).map(|i| (0..p).map(|j| (i + j) % p).collect()).collect();
    let element_ports: Vec<Vec<usize>> =
        (0..p).map(|m| (0..p).map(|j| (m + j) % p).collect()).collect();
    SetCoverInstance::with_ports(&subset_ports, &element_ports, vec![weight; p])
        .expect("symmetric K_{p,p} is valid")
}

/// A sensor-coverage instance on a `w × h` cell grid: sensors are placed on a
/// sub-lattice with the given `spacing` and cover all cells within Chebyshev
/// distance `radius`; cells are the elements. Models the paper's motivating
/// "monitoring in wireless sensor networks" workloads with naturally bounded
/// `f ≤ ⌈(2r+1)/spacing⌉²` and `k ≤ (2r+1)²`.
///
/// # Panics
/// Panics unless `1 ≤ spacing ≤ 2·radius + 1` (full coverage requirement).
pub fn grid_coverage(
    w: usize,
    h: usize,
    spacing: usize,
    radius: usize,
    weights: WeightSpec,
    seed: u64,
) -> SetCoverInstance {
    assert!(spacing >= 1 && spacing <= 2 * radius + 1, "spacing must keep the grid covered");
    assert!(w >= 1 && h >= 1);
    // Sensor coordinates along one axis: start at `radius` (covering the near
    // edge), step by `spacing`, and never leave a tail gap wider than
    // `radius` (covering the far edge).
    let lattice = |len: usize| -> Vec<usize> {
        let mut xs = Vec::new();
        let mut x = radius.min(len - 1);
        loop {
            xs.push(x.min(len - 1));
            if x + radius >= len - 1 {
                break;
            }
            x += spacing;
        }
        xs.dedup();
        xs
    };
    let mut sensors = Vec::new(); // (x, y) positions
    for &y in &lattice(h) {
        for &x in &lattice(w) {
            sensors.push((x, y));
        }
    }
    let members: Vec<Vec<usize>> = sensors
        .iter()
        .map(|&(sx, sy)| {
            let mut cells = Vec::new();
            let x0 = sx.saturating_sub(radius);
            let y0 = sy.saturating_sub(radius);
            for cy in y0..=(sy + radius).min(h - 1) {
                for cx in x0..=(sx + radius).min(w - 1) {
                    cells.push(cy * w + cx);
                }
            }
            cells
        })
        .collect();
    let wts = weights.draw_many(sensors.len(), seed);
    SetCoverInstance::new(w * h, &members, wts).expect("grid coverage instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_bounded_respects_bounds() {
        let inst = random_bounded(40, 20, 3, 8, WeightSpec::Uniform(10), 42);
        assert!(inst.f() <= 3);
        assert!(inst.k() <= 8);
        assert_eq!(inst.n_elements(), 40);
        assert_eq!(inst.n_subsets, 20);
        // Every element is covered by at least one subset.
        for u in 0..inst.n_elements() {
            assert!(inst.containing(u).count() >= 1);
        }
        assert!(inst.weights.iter().all(|&w| (1..=10).contains(&w)));
    }

    #[test]
    fn random_bounded_deterministic() {
        let a = random_bounded(30, 15, 2, 6, WeightSpec::Unit, 7);
        let b = random_bounded(30, 15, 2, 6, WeightSpec::Unit, 7);
        assert_eq!(a.graph.adjacency(), b.graph.adjacency());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn random_bounded_capacity_check() {
        let _ = random_bounded(100, 3, 2, 4, WeightSpec::Unit, 0);
    }

    #[test]
    fn symmetric_kpp_structure() {
        for p in 1..=5 {
            let inst = symmetric_kpp(p, 1);
            assert_eq!(inst.n_subsets, p);
            assert_eq!(inst.n_elements(), p);
            assert_eq!(inst.f(), p);
            assert_eq!(inst.k(), p);
            // Complete bipartite: every subset contains every element.
            for s in 0..p {
                let mut m: Vec<usize> = inst.members(s).collect();
                m.sort_unstable();
                assert_eq!(m, (0..p).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn symmetric_kpp_port_symmetry() {
        // The shift automorphism preserves ports: subset i's port j is
        // element (i + j) mod p on every subset.
        let p = 4;
        let inst = symmetric_kpp(p, 1);
        for i in 0..p {
            let ports: Vec<usize> = inst.members(i).collect();
            let expect: Vec<usize> = (0..p).map(|j| (i + j) % p).collect();
            assert_eq!(ports, expect);
        }
        for m in 0..p {
            let ports: Vec<usize> =
                inst.graph.neighbors(inst.element_node(m)).map(|(_, s)| s).collect();
            let expect: Vec<usize> = (0..p).map(|j| (m + j) % p).collect();
            assert_eq!(ports, expect);
        }
    }

    #[test]
    fn grid_coverage_covers_everything() {
        let inst = grid_coverage(12, 9, 3, 2, WeightSpec::Uniform(5), 3);
        assert_eq!(inst.n_elements(), 12 * 9);
        assert!(inst.is_cover(&vec![true; inst.n_subsets]));
        assert!(inst.k() <= 25); // (2*2+1)^2
        assert!(inst.f() <= 4); // ceil(5/3)^2
    }
}

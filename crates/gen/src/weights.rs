//! Weight generators.
//!
//! The paper's model takes integer weights in `{1, …, W}` with W known to all
//! nodes (§1.4) — "the algorithms are fast even if one chooses a very large
//! value of W such as W = 2^64". The generators below produce the weight
//! regimes the experiments sweep over.

use crate::rng::Rng;

/// How to draw node/subset weights.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightSpec {
    /// All weights 1 (the unweighted case, W = 1).
    Unit,
    /// Uniform on `{1, …, w}`.
    Uniform(u64),
    /// Rounded geometric-ish spread over `{1, …, w}`: weight = `w^u` for
    /// uniform `u ∈ [0,1)`, rounded up. Produces heavy weight skew, the
    /// adversarial regime for proportional-offer algorithms.
    LogUniform(u64),
    /// Two classes: cheap (1) with the given probability, else expensive (w).
    Bimodal {
        /// The expensive weight.
        w: u64,
        /// Probability of drawing the cheap weight.
        cheap_prob: f64,
    },
}

impl WeightSpec {
    /// Upper bound W implied by the spec.
    pub fn max_weight(&self) -> u64 {
        match *self {
            WeightSpec::Unit => 1,
            WeightSpec::Uniform(w) | WeightSpec::LogUniform(w) => w,
            WeightSpec::Bimodal { w, .. } => w,
        }
    }

    /// Draws one weight.
    pub fn draw(&self, rng: &mut Rng) -> u64 {
        match *self {
            WeightSpec::Unit => 1,
            WeightSpec::Uniform(w) => rng.range_u64(1, w),
            WeightSpec::LogUniform(w) => {
                let u = rng.f64();
                let v = (w as f64).powf(u).ceil() as u64;
                v.clamp(1, w)
            }
            WeightSpec::Bimodal { w, cheap_prob } => {
                if rng.chance(cheap_prob) {
                    1
                } else {
                    w
                }
            }
        }
    }

    /// Draws `n` weights from a fresh stream for `seed`.
    pub fn draw_many(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| self.draw(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_weights() {
        let w = WeightSpec::Unit.draw_many(10, 0);
        assert_eq!(w, vec![1; 10]);
        assert_eq!(WeightSpec::Unit.max_weight(), 1);
    }

    #[test]
    fn uniform_in_range() {
        let ws = WeightSpec::Uniform(100).draw_many(1000, 3);
        assert!(ws.iter().all(|&w| (1..=100).contains(&w)));
        // Should span a good part of the range.
        assert!(*ws.iter().max().unwrap() > 80);
        assert!(*ws.iter().min().unwrap() < 20);
    }

    #[test]
    fn log_uniform_skews_low_but_reaches_high() {
        let ws = WeightSpec::LogUniform(1 << 20).draw_many(2000, 5);
        assert!(ws.iter().all(|&w| (1..=(1 << 20)).contains(&w)));
        let low = ws.iter().filter(|&&w| w <= 1024).count();
        assert!(low > 500, "log-uniform should put ~half the mass below sqrt(W)");
        assert!(*ws.iter().max().unwrap() > 1 << 15);
    }

    #[test]
    fn bimodal_mixes() {
        let spec = WeightSpec::Bimodal { w: 1_000_000, cheap_prob: 0.5 };
        let ws = spec.draw_many(1000, 7);
        let cheap = ws.iter().filter(|&&w| w == 1).count();
        assert!(ws.iter().all(|&w| w == 1 || w == 1_000_000));
        assert!((300..700).contains(&cheap));
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(
            WeightSpec::Uniform(50).draw_many(20, 9),
            WeightSpec::Uniform(50).draw_many(20, 9)
        );
        assert_ne!(
            WeightSpec::Uniform(50).draw_many(20, 9),
            WeightSpec::Uniform(50).draw_many(20, 10)
        );
    }
}

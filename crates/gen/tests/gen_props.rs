//! Property tests for the workload generators: every family respects its
//! documented degree/size bounds, seeds are reproducible, and the special
//! constructions have the structure the experiments rely on.

use anonet_gen::{family, reduction, setcover, Rng, WeightSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn regular_graphs_are_regular(half_n in 3usize..20, d in 1usize..6, seed in any::<u64>()) {
        let n = 2 * half_n;
        prop_assume!(d < n);
        let g = family::random_regular(n, d, seed);
        prop_assert!((0..n).all(|v| g.degree(v) == d));
        prop_assert_eq!(g.m(), n * d / 2);
    }

    #[test]
    fn gnp_capped_bounds(n in 1usize..50, p in 0.0f64..1.0, cap in 1usize..8, seed in any::<u64>()) {
        let g = family::gnp_capped(n, p, cap, seed);
        prop_assert!(g.max_degree() <= cap);
        prop_assert_eq!(g.n(), n);
    }

    #[test]
    fn trees_are_trees(n in 1usize..60, cap in 2usize..8, seed in any::<u64>()) {
        let g = family::random_tree(n, cap, seed);
        prop_assert_eq!(g.m(), n - 1);
        prop_assert!(g.max_degree() <= cap);
        // Connected: BFS covers all nodes.
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for (_, u) in g.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        prop_assert_eq!(count, n);
    }

    #[test]
    fn weights_in_declared_range(n in 1usize..100, w in 1u64..10_000, seed in any::<u64>()) {
        for spec in [WeightSpec::Unit, WeightSpec::Uniform(w), WeightSpec::LogUniform(w)] {
            let ws = spec.draw_many(n, seed);
            prop_assert_eq!(ws.len(), n);
            prop_assert!(ws.iter().all(|&x| x >= 1 && x <= spec.max_weight()));
        }
    }

    #[test]
    fn setcover_generator_bounds(
        n_elem in 1usize..30,
        extra_cap in 1usize..30,
        f in 1usize..4,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let n_sub = n_elem.div_ceil(k) + extra_cap;
        let inst = setcover::random_bounded(n_elem, n_sub, f, k, WeightSpec::Uniform(9), seed);
        prop_assert!(inst.f() <= f);
        prop_assert!(inst.k() <= k);
        prop_assert_eq!(inst.n_elements(), n_elem);
        // Coverable: every element has at least one subset.
        for u in 0..n_elem {
            prop_assert!(inst.containing(u).count() >= 1);
        }
    }

    #[test]
    fn symmetric_kpp_is_shift_invariant(p in 1usize..8, w in 1u64..100) {
        let inst = setcover::symmetric_kpp(p, w);
        // Port j of subset i is element (i + j) mod p and vice versa — the
        // structure that makes i -> i+1 a port-preserving automorphism.
        for i in 0..p {
            let ports: Vec<usize> = inst.members(i).collect();
            for (j, &e) in ports.iter().enumerate() {
                prop_assert_eq!(e, (i + j) % p);
            }
        }
    }

    #[test]
    fn cycle_reduction_structure(n in 2usize..60, p in 1usize..6) {
        prop_assume!(n >= p);
        let inst = reduction::cycle_cover_instance(n, p);
        prop_assert_eq!(inst.f(), p);
        prop_assert_eq!(inst.k(), p);
        // Subset u covers exactly u..u+p-1.
        for u in 0..n {
            let members: Vec<usize> = inst.members(u).collect();
            let expect: Vec<usize> = (0..p).map(|d| (u + d) % n).collect();
            prop_assert_eq!(members, expect);
        }
        // Any valid cover, pushed through the extraction, is independent.
        let mut rng = Rng::new(n as u64 * 31 + p as u64);
        let mut cover = vec![false; n];
        for c in cover.iter_mut() {
            *c = rng.chance(0.7);
        }
        // Repair to a valid cover: ensure every element covered.
        for u in 0..n {
            if !inst.containing(u).any(|s| cover[s]) {
                cover[u] = true;
            }
        }
        prop_assert!(inst.is_cover(&cover));
        let is = reduction::extract_independent_set(n, &cover);
        prop_assert!(reduction::is_cycle_independent_set(n, &is));
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn permutations_are_permutations(n in 1usize..200, seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let p = rng.permutation(n);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}

#[test]
fn grid_coverage_full_parameter_grid() {
    for (w, h, spacing, radius) in
        [(6usize, 6usize, 1usize, 1usize), (10, 8, 2, 1), (9, 9, 3, 2), (12, 5, 5, 2)]
    {
        let inst = setcover::grid_coverage(w, h, spacing, radius, WeightSpec::Uniform(5), 1);
        assert!(inst.is_cover(&vec![true; inst.n_subsets]), "({w},{h},{spacing},{radius})");
        assert!(inst.k() <= (2 * radius + 1) * (2 * radius + 1));
    }
}
